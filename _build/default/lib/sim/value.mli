(** Runtime values and storage for the simulator.

    Scalars are one-element views and array elements are offset views
    into shared storage, which gives Fortran's by-reference argument
    passing (including passing [A(5)] as the start of an array and
    reshaping across a call boundary) for free. *)

type value = VI of int | VR of float | VL of bool | VS of string

val pp_value : Format.formatter -> value -> unit
val to_float : value -> float
val to_int : value -> int
val to_bool : value -> bool

(** [convert typ v] — Fortran assignment conversion (REAL→INTEGER
    truncates toward zero, INTEGER→REAL widens). *)
val convert : Fortran_front.Ast.typ -> value -> value

type cell = { cstore : value array; coff : int }

val get : cell -> value
val set : Fortran_front.Ast.typ -> cell -> value -> unit

(** An array: a view into shared storage with declared bounds
    (column-major, Fortran order). *)
type arr = { store : value array; base : int; bounds : (int * int) list }

(** [offset arr idxs] — linear offset of the element at [idxs].
    @raise Failure on a subscript out of the view's storage. *)
val offset : arr -> int list -> int

val elem_cell : arr -> int list -> cell

type slot = Scalar of cell | Arr of arr

(** Fresh zero-initialized storage of [n] elements of type [typ]. *)
val alloc : Fortran_front.Ast.typ -> int -> value array

val zero_of : Fortran_front.Ast.typ -> value
