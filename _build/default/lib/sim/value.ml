open Fortran_front

type value = VI of int | VR of float | VL of bool | VS of string

let pp_value ppf = function
  | VI n -> Format.pp_print_int ppf n
  | VR f -> Format.fprintf ppf "%.6g" f
  | VL b -> Format.pp_print_string ppf (if b then "T" else "F")
  | VS s -> Format.pp_print_string ppf s

let to_float = function
  | VI n -> float_of_int n
  | VR f -> f
  | VL b -> if b then 1.0 else 0.0
  | VS _ -> nan

let to_int = function
  | VI n -> n
  | VR f -> int_of_float (Float.trunc f)
  | VL b -> if b then 1 else 0
  | VS _ -> 0

let to_bool = function
  | VL b -> b
  | VI n -> n <> 0
  | VR f -> f <> 0.0
  | VS _ -> false

let convert typ v =
  match (typ, v) with
  | Ast.Tinteger, VR f -> VI (int_of_float (Float.trunc f))
  | Ast.Tinteger, VI _ -> v
  | (Ast.Treal | Ast.Tdouble), VI n -> VR (float_of_int n)
  | (Ast.Treal | Ast.Tdouble), VR _ -> v
  | Ast.Tlogical, _ -> VL (to_bool v)
  | _, _ -> v

type cell = { cstore : value array; coff : int }

let get c = c.cstore.(c.coff)
let set typ c v = c.cstore.(c.coff) <- convert typ v

type arr = { store : value array; base : int; bounds : (int * int) list }

let offset (a : arr) (idxs : int list) : int =
  let rec go acc stride bounds idxs =
    match (bounds, idxs) with
    | [], [] -> acc
    | (lb, ub) :: bounds, i :: idxs ->
      (* do not range-check individual dimensions (Fortran programs
         routinely linearize); the final bounds check below guards
         the storage *)
      let size = if ub >= lb then ub - lb + 1 else 1 in
      go (acc + ((i - lb) * stride)) (stride * size) bounds idxs
    | _ -> failwith "subscript count mismatch"
  in
  let off = a.base + go 0 1 a.bounds idxs in
  if off < 0 || off >= Array.length a.store then
    failwith
      (Printf.sprintf "subscript out of bounds (offset %d of %d)" off
         (Array.length a.store))
  else off

let elem_cell a idxs = { cstore = a.store; coff = offset a idxs }

type slot = Scalar of cell | Arr of arr

let zero_of = function
  | Ast.Tinteger -> VI 0
  | Ast.Treal | Ast.Tdouble -> VR 0.0
  | Ast.Tlogical -> VL false

let alloc typ n = Array.make (max n 1) (zero_of typ)
