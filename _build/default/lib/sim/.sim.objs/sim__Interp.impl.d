lib/sim/interp.ml: Array Ast Buffer Float Format Fortran_front Fun Hashtbl List Option Perf Printf Random String Symbol Value
