lib/sim/interp.mli: Ast Fortran_front Perf
