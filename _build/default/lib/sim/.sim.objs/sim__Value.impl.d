lib/sim/value.ml: Array Ast Float Format Fortran_front Printf
