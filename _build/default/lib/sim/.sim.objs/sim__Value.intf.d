lib/sim/value.mli: Format Fortran_front
