type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }
let none = { file = ""; line = 0; col = 0 }
let is_none t = t.line = 0 && t.col = 0 && t.file = ""

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp ppf t =
  if is_none t then Format.fprintf ppf "<synthetic>"
  else Format.fprintf ppf "%s:%d:%d" t.file t.line t.col

let to_string t = Format.asprintf "%a" pp t
