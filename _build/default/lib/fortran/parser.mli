(** Recursive-descent parser for the Fortran 77 subset.

    Supported program units: [PROGRAM], [SUBROUTINE], [typ FUNCTION].
    Supported statements: assignment, block and logical [IF],
    [DO]/[ENDDO], labeled [DO n] ... [n CONTINUE] (including shared
    terminator labels across nested loops), [DOALL]/[PARALLEL DO],
    [CALL], [GOTO], [CONTINUE], [RETURN], [STOP], [PRINT *,...] and
    [WRITE(*,*)] (both become {!Ast.Print}).
    Supported declarations: type statements with dimension lists,
    [DIMENSION], [PARAMETER], [COMMON], [IMPLICIT NONE] (accepted and
    ignored), [EXTERNAL] (accepted and ignored).

    Array references and function calls are both parsed as
    {!Ast.Index}; the {!Symbol} pass disambiguates them. *)

exception Error of string * Loc.t

(** [parse_program ~file src] parses a whole source file into a
    {!Ast.program}.  Statement ids are drawn from the global supply
    ({!Ast.fresh_sid}).
    @raise Error on a syntax error.
    @raise Lexer.Error on a lexical error. *)
val parse_program : file:string -> string -> Ast.program

(** [parse_expr_string s] parses a single expression, as typed by a
    user into the editor (assertions, filter predicates).
    @raise Error if [s] is not exactly one expression. *)
val parse_expr_string : string -> Ast.expr

(** [parse_stmts_string ~file s] parses a statement sequence (no
    enclosing program unit) — used by the editor to parse text typed
    into the source pane. *)
val parse_stmts_string : file:string -> string -> Ast.stmt list
