exception Error of string * Loc.t

type state = {
  toks : (Token.t * Loc.t) array;
  mutable cur : int;
  (* Set when a labeled DO consumes its terminator statement; outer
     loops sharing the same terminator label test it (see [parse_do]). *)
  mutable last_terminator : int option;
  (* True when the construct just parsed already consumed the newline
     that ends it (labeled DO loops end at their terminator statement,
     which eats its own newline). *)
  mutable newline_done : bool;
}

let peek st = fst st.toks.(st.cur)
let peek_loc st = snd st.toks.(st.cur)

let peek2 st =
  if st.cur + 1 < Array.length st.toks then fst st.toks.(st.cur + 1)
  else Token.EOF

let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let error st msg = raise (Error (msg, peek_loc st))

let expect st tok =
  if Token.equal (peek st) tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let skip_newlines st =
  while Token.equal (peek st) Token.NEWLINE do advance st done

let expect_newline st =
  match peek st with
  | Token.NEWLINE -> skip_newlines st
  | Token.EOF -> ()
  | t -> error st (Printf.sprintf "expected end of statement, found %s" (Token.to_string t))

let ident st =
  match peek st with
  | Token.IDENT s -> advance st; s
  | t -> error st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let lhs = parse_and st in
  let rec go lhs =
    match peek st with
    | Token.OR ->
      advance st;
      go (Ast.Bin (Ast.Or, lhs, parse_and st))
    | _ -> lhs
  in
  go lhs

and parse_and st =
  let lhs = parse_not st in
  let rec go lhs =
    match peek st with
    | Token.AND ->
      advance st;
      go (Ast.Bin (Ast.And, lhs, parse_not st))
    | _ -> lhs
  in
  go lhs

and parse_not st =
  match peek st with
  | Token.NOT ->
    advance st;
    Ast.Un (Ast.Not, parse_not st)
  | _ -> parse_rel st

and parse_rel st =
  let lhs = parse_arith st in
  let op =
    match peek st with
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | Token.EQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Bin (op, lhs, parse_arith st)

and parse_arith st =
  let lhs = parse_term st in
  let rec go lhs =
    match peek st with
    | Token.PLUS ->
      advance st;
      go (Ast.Bin (Ast.Add, lhs, parse_term st))
    | Token.MINUS ->
      advance st;
      go (Ast.Bin (Ast.Sub, lhs, parse_term st))
    | _ -> lhs
  in
  go lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec go lhs =
    match peek st with
    | Token.STAR ->
      advance st;
      go (Ast.Bin (Ast.Mul, lhs, parse_factor st))
    | Token.SLASH ->
      advance st;
      go (Ast.Bin (Ast.Div, lhs, parse_factor st))
    | _ -> lhs
  in
  go lhs

(* Unary minus binds looser than ** : -A**2 parses as -(A**2). *)
and parse_factor st =
  match peek st with
  | Token.MINUS ->
    advance st;
    Ast.Un (Ast.Neg, parse_factor st)
  | Token.PLUS ->
    advance st;
    parse_factor st
  | _ -> parse_power st

and parse_power st =
  let base = parse_primary st in
  match peek st with
  | Token.POW ->
    advance st;
    Ast.Bin (Ast.Pow, base, parse_factor st)
  | _ -> base

and parse_primary st =
  match peek st with
  | Token.INT_LIT n -> advance st; Ast.Int n
  | Token.REAL_LIT f -> advance st; Ast.Real f
  | Token.TRUE -> advance st; Ast.Logic true
  | Token.FALSE -> advance st; Ast.Logic false
  | Token.STRING_LIT s -> advance st; Ast.Str s
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | Token.IDENT name -> (
    advance st;
    match peek st with
    | Token.LPAREN ->
      advance st;
      let args = parse_expr_list st in
      expect st Token.RPAREN;
      Ast.Index (name, args)
    | _ -> Ast.Var name)
  | t -> error st (Printf.sprintf "expected expression, found %s" (Token.to_string t))

and parse_expr_list st =
  let e = parse_expr st in
  match peek st with
  | Token.COMMA ->
    advance st;
    e :: parse_expr_list st
  | _ -> [ e ]

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let is_block_end st =
  match peek st with
  | Token.KW (Token.END | Token.ENDDO | Token.ENDIF | Token.ELSE | Token.ELSEIF)
  | Token.EOF ->
    true
  | _ -> false

let rec parse_stmt st : Ast.stmt =
  let loc = peek_loc st in
  let label =
    match peek st with
    | Token.INT_LIT n when Token.equal (peek2 st) Token.NEWLINE = false ->
      advance st;
      Some n
    | _ -> None
  in
  st.newline_done <- false;
  let node = parse_stmt_node st in
  if not st.newline_done then expect_newline st;
  st.newline_done <- false;
  { (Ast.mk ?label ~loc node) with Ast.label }

and parse_stmt_node st : Ast.stmt_node =
  match peek st with
  | Token.KW Token.DO -> advance st; parse_do st ~parallel:false
  | Token.KW Token.DOALL -> advance st; parse_do st ~parallel:true
  | Token.KW Token.IF -> advance st; parse_if st
  | Token.KW Token.CALL ->
    advance st;
    let name = ident st in
    let args =
      match peek st with
      | Token.LPAREN ->
        advance st;
        let args =
          match peek st with Token.RPAREN -> [] | _ -> parse_expr_list st
        in
        expect st Token.RPAREN;
        args
      | _ -> []
    in
    Ast.Call (name, args)
  | Token.KW Token.GOTO ->
    advance st;
    (match peek st with
    | Token.INT_LIT n -> advance st; Ast.Goto n
    | _ -> error st "expected statement label after GOTO")
  | Token.KW Token.CONTINUE -> advance st; Ast.Continue
  | Token.KW Token.RETURN -> advance st; Ast.Return
  | Token.KW Token.STOP -> advance st; Ast.Stop
  | Token.KW Token.PRINT ->
    advance st;
    expect st Token.STAR;
    (match peek st with
    | Token.COMMA ->
      advance st;
      Ast.Print (parse_expr_list st)
    | _ -> Ast.Print [])
  | Token.KW Token.WRITE ->
    advance st;
    expect st Token.LPAREN;
    expect st Token.STAR;
    expect st Token.COMMA;
    expect st Token.STAR;
    expect st Token.RPAREN;
    (match peek st with
    | Token.NEWLINE | Token.EOF -> Ast.Print []
    | _ -> Ast.Print (parse_expr_list st))
  | Token.IDENT _ -> parse_assignment st
  | t -> error st (Printf.sprintf "unexpected token %s" (Token.to_string t))

and parse_assignment st =
  let name = ident st in
  let lhs =
    match peek st with
    | Token.LPAREN ->
      advance st;
      let args = parse_expr_list st in
      expect st Token.RPAREN;
      Ast.Index (name, args)
    | _ -> Ast.Var name
  in
  expect st Token.ASSIGN;
  let rhs = parse_expr st in
  Ast.Assign (lhs, rhs)

and parse_do st ~parallel : Ast.stmt_node =
  (* Either [DO label V = ...] or [DO V = ...] *)
  let terminator =
    match peek st with
    | Token.INT_LIT n -> advance st; Some n
    | _ -> None
  in
  let dvar = ident st in
  expect st Token.ASSIGN;
  let lo = parse_expr st in
  expect st Token.COMMA;
  let hi = parse_expr st in
  let step =
    match peek st with
    | Token.COMMA ->
      advance st;
      Some (parse_expr st)
    | _ -> None
  in
  expect_newline st;
  let header = { Ast.dvar; lo; hi; step; parallel } in
  match terminator with
  | None ->
    (* ENDDO-terminated *)
    let body = parse_block st in
    (match peek st with
    | Token.KW Token.ENDDO ->
      advance st;
      Ast.Do (header, body)
    | _ -> error st "expected ENDDO")
  | Some lbl ->
    (* label-terminated; the terminator statement belongs to the body.
       Nested loops may share the terminator: [last_terminator]
       propagates the consumed label outward. *)
    let body = ref [] in
    let finished = ref false in
    while not !finished do
      if is_block_end st then error st "missing DO terminator label";
      st.last_terminator <- None;
      let s = parse_stmt st in
      body := s :: !body;
      if s.Ast.label = Some lbl || st.last_terminator = Some lbl then begin
        finished := true;
        st.last_terminator <- Some lbl
      end
    done;
    st.newline_done <- true;
    Ast.Do (header, List.rev !body)

and parse_if st : Ast.stmt_node =
  expect st Token.LPAREN;
  let cond = parse_expr st in
  expect st Token.RPAREN;
  match peek st with
  | Token.KW Token.THEN ->
    advance st;
    expect_newline st;
    let then_body = parse_block st in
    let rec branches acc =
      match peek st with
      | Token.KW Token.ELSEIF ->
        advance st;
        expect st Token.LPAREN;
        let c = parse_expr st in
        expect st Token.RPAREN;
        expect st (Token.KW Token.THEN);
        expect_newline st;
        let b = parse_block st in
        branches ((c, b) :: acc)
      | Token.KW Token.ELSE ->
        advance st;
        expect_newline st;
        let els = parse_block st in
        expect st (Token.KW Token.ENDIF);
        (List.rev acc, els)
      | Token.KW Token.ENDIF ->
        advance st;
        (List.rev acc, [])
      | t ->
        error st (Printf.sprintf "expected ELSE/ELSEIF/ENDIF, found %s" (Token.to_string t))
    in
    let brs, els = branches [ (cond, then_body) ] in
    Ast.If (brs, els)
  | _ ->
    (* logical IF: a single statement on the same line *)
    let loc = peek_loc st in
    let node = parse_stmt_node st in
    let s = Ast.mk ~loc node in
    Ast.If ([ (cond, [ s ]) ], [])

and parse_block st : Ast.stmt list =
  skip_newlines st;
  let rec go acc =
    if is_block_end st then List.rev acc
    else begin
      st.last_terminator <- None;
      let s = parse_stmt st in
      go (s :: acc)
    end
  in
  go []

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_dims st : (Ast.expr * Ast.expr) list =
  (* after '(' : dim [, dim]* ')' where dim is [lb:]ub or '*' *)
  let parse_dim () =
    match peek st with
    | Token.STAR ->
      advance st;
      (Ast.Int 1, Ast.Int max_int)
    | _ -> (
      let e1 = parse_expr st in
      match peek st with
      | Token.COLON ->
        advance st;
        let e2 = parse_expr st in
        (e1, e2)
      | _ -> (Ast.Int 1, e1))
  in
  let rec go acc =
    let d = parse_dim () in
    match peek st with
    | Token.COMMA ->
      advance st;
      go (d :: acc)
    | _ -> List.rev (d :: acc)
  in
  let dims = go [] in
  expect st Token.RPAREN;
  dims

let rec parse_decl_entities st typ acc =
  let name = ident st in
  let dims =
    match peek st with
    | Token.LPAREN ->
      advance st;
      parse_dims st
    | _ -> []
  in
  let d =
    { Ast.dname = name; dtyp = typ; dims; init = None; data_init = None;
      common_block = None }
  in
  match peek st with
  | Token.COMMA ->
    advance st;
    parse_decl_entities st typ (d :: acc)
  | _ -> List.rev (d :: acc)

let is_decl_start st =
  match peek st with
  | Token.KW
      ( Token.INTEGER | Token.REAL | Token.DOUBLEPREC | Token.LOGICAL
      | Token.DIMENSION | Token.PARAMETER | Token.COMMON | Token.IMPLICIT
      | Token.EXTERNAL | Token.DATA ) ->
    true
  | _ -> false

(* Parse one declaration line, merging into [decls] (an assoc by name). *)
let parse_decl_line st decls =
  let merge decls (d : Ast.decl) =
    match List.partition (fun (x : Ast.decl) -> x.dname = d.dname) decls with
    | [], rest -> rest @ [ d ]
    | [ old ], rest ->
      let merged =
        {
          old with
          Ast.dtyp = d.dtyp;
          dims = (if d.dims = [] then old.Ast.dims else d.dims);
        }
      in
      rest @ [ merged ]
    | _ :: _ :: _, _ -> assert false
  in
  match peek st with
  | Token.KW Token.IMPLICIT -> assert false (* handled by parse_unit *)
  | Token.KW Token.EXTERNAL ->
    advance st;
    let rec skip () =
      let _ = ident st in
      match peek st with
      | Token.COMMA -> advance st; skip ()
      | _ -> ()
    in
    skip ();
    decls
  | Token.KW Token.DIMENSION ->
    advance st;
    let rec go decls =
      let name = ident st in
      expect st Token.LPAREN;
      let dims = parse_dims st in
      let decls =
        match List.partition (fun (x : Ast.decl) -> x.Ast.dname = name) decls with
        | [ old ], rest -> rest @ [ { old with Ast.dims } ]
        | [], rest ->
          rest
          @ [ { Ast.dname = name; dtyp = Ast.Treal; dims; init = None;
                data_init = None; common_block = None } ]
        | _ -> assert false
      in
      match peek st with
      | Token.COMMA -> advance st; go decls
      | _ -> decls
    in
    go decls
  | Token.KW Token.PARAMETER ->
    advance st;
    expect st Token.LPAREN;
    let rec go decls =
      let name = ident st in
      expect st Token.ASSIGN;
      let v = parse_expr st in
      let decls =
        match List.partition (fun (x : Ast.decl) -> x.Ast.dname = name) decls with
        | [ old ], rest -> rest @ [ { old with Ast.init = Some v } ]
        | [], rest ->
          rest
          @ [ { Ast.dname = name; dtyp = Ast.Tinteger; dims = []; init = Some v;
                data_init = None; common_block = None } ]
        | _ -> assert false
      in
      match peek st with
      | Token.COMMA -> advance st; go decls
      | _ -> decls
    in
    let decls = go decls in
    expect st Token.RPAREN;
    decls
  | Token.KW Token.COMMON ->
    advance st;
    expect st Token.SLASH;
    let block = ident st in
    expect st Token.SLASH;
    let rec go decls =
      let name = ident st in
      let dims =
        match peek st with
        | Token.LPAREN -> advance st; parse_dims st
        | _ -> []
      in
      let decls =
        match List.partition (fun (x : Ast.decl) -> x.Ast.dname = name) decls with
        | [ old ], rest ->
          rest
          @ [ { old with
                Ast.common_block = Some block;
                dims = (if dims = [] then old.Ast.dims else dims) } ]
        | [], rest ->
          rest
          @ [ { Ast.dname = name; dtyp = Ast.Treal; dims; init = None;
                data_init = None; common_block = Some block } ]
        | _ -> assert false
      in
      match peek st with
      | Token.COMMA -> advance st; go decls
      | _ -> decls
    in
    go decls
  | Token.KW Token.DATA ->
    (* DATA name /value/ [, name /value/]* — an initial value, distinct
       from a PARAMETER constant: the variable stays assignable *)
    advance st;
    let parse_data_literal () =
      (* a (possibly signed) literal: an expression parser would eat
         the closing '/' as a division *)
      let neg =
        match peek st with
        | Token.MINUS -> advance st; true
        | _ -> false
      in
      let v =
        match peek st with
        | Token.INT_LIT n -> advance st; Ast.Int n
        | Token.REAL_LIT f -> advance st; Ast.Real f
        | Token.TRUE -> advance st; Ast.Logic true
        | Token.FALSE -> advance st; Ast.Logic false
        | t ->
          error st (Printf.sprintf "expected a literal in DATA, found %s"
                      (Token.to_string t))
      in
      if neg then Ast.Un (Ast.Neg, v) else v
    in
    let rec go decls =
      let name = ident st in
      expect st Token.SLASH;
      let v = parse_data_literal () in
      expect st Token.SLASH;
      let decls =
        match List.partition (fun (x : Ast.decl) -> x.Ast.dname = name) decls with
        | [ old ], rest -> rest @ [ { old with Ast.data_init = Some v } ]
        | [], rest ->
          rest
          @ [ { Ast.dname = name; dtyp = Ast.Treal; dims = []; init = None;
                data_init = Some v; common_block = None } ]
        | _ -> assert false
      in
      match peek st with
      | Token.COMMA -> advance st; go decls
      | _ -> decls
    in
    go decls
  | Token.KW Token.INTEGER ->
    advance st;
    List.fold_left merge decls (parse_decl_entities st Ast.Tinteger [])
  | Token.KW Token.REAL ->
    advance st;
    List.fold_left merge decls (parse_decl_entities st Ast.Treal [])
  | Token.KW Token.DOUBLEPREC ->
    advance st;
    List.fold_left merge decls (parse_decl_entities st Ast.Tdouble [])
  | Token.KW Token.LOGICAL ->
    advance st;
    List.fold_left merge decls (parse_decl_entities st Ast.Tlogical [])
  | t -> error st (Printf.sprintf "unexpected token in declarations: %s" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Program units                                                       *)
(* ------------------------------------------------------------------ *)

let parse_unit st : Ast.program_unit =
  skip_newlines st;
  let kind, uname =
    match peek st with
    | Token.KW Token.PROGRAM ->
      advance st;
      let name = ident st in
      (Ast.Main, name)
    | Token.KW Token.SUBROUTINE ->
      advance st;
      let name = ident st in
      let formals =
        match peek st with
        | Token.LPAREN ->
          advance st;
          let rec go acc =
            match peek st with
            | Token.RPAREN -> advance st; List.rev acc
            | Token.COMMA -> advance st; go acc
            | Token.IDENT s -> advance st; go (s :: acc)
            | t ->
              error st
                (Printf.sprintf "bad formal parameter: %s" (Token.to_string t))
          in
          go []
        | _ -> []
      in
      (Ast.Subroutine formals, name)
    | Token.KW ((Token.INTEGER | Token.REAL | Token.DOUBLEPREC | Token.LOGICAL) as k)
      when Token.equal (peek2 st) (Token.KW Token.FUNCTION) ->
      let typ =
        match k with
        | Token.INTEGER -> Ast.Tinteger
        | Token.REAL -> Ast.Treal
        | Token.DOUBLEPREC -> Ast.Tdouble
        | Token.LOGICAL -> Ast.Tlogical
        | _ -> assert false
      in
      advance st;
      advance st;
      let name = ident st in
      expect st Token.LPAREN;
      let rec go acc =
        match peek st with
        | Token.RPAREN -> advance st; List.rev acc
        | Token.COMMA -> advance st; go acc
        | Token.IDENT s -> advance st; go (s :: acc)
        | t ->
          error st (Printf.sprintf "bad formal parameter: %s" (Token.to_string t))
      in
      (Ast.Function (typ, go []), name)
    | t ->
      error st
        (Printf.sprintf "expected PROGRAM/SUBROUTINE/FUNCTION, found %s"
           (Token.to_string t))
  in
  expect_newline st;
  let implicit_none = ref false in
  let implicits = ref [] in
  let parse_implicit () =
    advance st;
    match peek st with
    | Token.KW Token.NONE ->
      advance st;
      implicit_none := true
    | Token.KW ((Token.INTEGER | Token.REAL | Token.DOUBLEPREC | Token.LOGICAL) as k) ->
      let typ =
        match k with
        | Token.INTEGER -> Ast.Tinteger
        | Token.REAL -> Ast.Treal
        | Token.DOUBLEPREC -> Ast.Tdouble
        | Token.LOGICAL -> Ast.Tlogical
        | _ -> assert false
      in
      advance st;
      expect st Token.LPAREN;
      let letter () =
        match peek st with
        | Token.IDENT s when String.length s = 1 -> advance st; s.[0]
        | t ->
          error st (Printf.sprintf "expected a letter in IMPLICIT, found %s"
                      (Token.to_string t))
      in
      let rec ranges acc =
        let a = letter () in
        let b =
          match peek st with
          | Token.MINUS -> advance st; letter ()
          | _ -> a
        in
        let acc = (a, b) :: acc in
        match peek st with
        | Token.COMMA -> advance st; ranges acc
        | _ -> List.rev acc
      in
      let rs = ranges [] in
      expect st Token.RPAREN;
      implicits := (typ, rs) :: !implicits
    | t ->
      error st
        (Printf.sprintf "expected NONE or a type after IMPLICIT, found %s"
           (Token.to_string t))
  in
  let rec parse_decls decls =
    skip_newlines st;
    if peek st = Token.KW Token.IMPLICIT then begin
      parse_implicit ();
      expect_newline st;
      parse_decls decls
    end
    else if is_decl_start st then begin
      (* A type keyword followed by FUNCTION would be a new unit; that
         cannot appear here because units are split at END. *)
      let decls = parse_decl_line st decls in
      expect_newline st;
      parse_decls decls
    end
    else decls
  in
  let decls = parse_decls [] in
  let body = parse_block st in
  expect st (Token.KW Token.END);
  expect_newline st;
  { Ast.uname; kind; decls; implicit_none = !implicit_none;
    implicits = List.rev !implicits; body }

let parse_program ~file src : Ast.program =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let st = { toks; cur = 0; last_terminator = None; newline_done = false } in
  let rec go acc =
    skip_newlines st;
    match peek st with
    | Token.EOF -> List.rev acc
    | _ -> go (parse_unit st :: acc)
  in
  { Ast.punits = go [] }

let parse_expr_string s =
  let toks = Array.of_list (Lexer.tokenize ~file:"<expr>" s) in
  let st = { toks; cur = 0; last_terminator = None; newline_done = false } in
  skip_newlines st;
  let e = parse_expr st in
  skip_newlines st;
  (match peek st with
  | Token.EOF -> ()
  | t -> error st (Printf.sprintf "trailing input after expression: %s" (Token.to_string t)));
  e

let parse_stmts_string ~file s =
  let toks = Array.of_list (Lexer.tokenize ~file s) in
  let st = { toks; cur = 0; last_terminator = None; newline_done = false } in
  let stmts = parse_block st in
  (match peek st with
  | Token.EOF -> ()
  | t -> error st (Printf.sprintf "unexpected %s" (Token.to_string t)));
  stmts
