(** Symbol tables for the Fortran subset.

    Built per program unit.  Resolves declarations, applies Fortran's
    implicit typing rule (names starting I–N are INTEGER, others REAL)
    to undeclared names, recognizes intrinsics, and — crucially for
    everything downstream — decides whether each {!Ast.Index} node is
    an array reference or a function call. *)

type kind =
  | Scalar
  | Array of (Ast.expr * Ast.expr) list  (** dimension bounds *)
  | Routine        (** target of a CALL *)
  | External_fun   (** referenced with arguments, not an array, not intrinsic *)
  | Intrinsic      (** ABS, MOD, MAX, MIN, SQRT, ... *)

type info = {
  name : string;
  typ : Ast.typ;
  kind : kind;
  formal : bool;               (** is a formal parameter of the unit *)
  param : Ast.expr option;     (** PARAMETER value *)
  data : Ast.expr option;      (** DATA initial value (not a constant) *)
  common : string option;      (** COMMON block name *)
}

type table

(** [build u] scans declarations and the body of [u]. *)
val build : Ast.program_unit -> table

val lookup : table -> string -> info option

(** All entries, sorted by name. *)
val infos : table -> info list

val is_array : table -> string -> bool

(** [is_fun_call t name] — true when an [Index (name, _)] node denotes
    a function call (intrinsic or external) rather than an array
    element. *)
val is_fun_call : table -> string -> bool

val is_formal : table -> string -> bool
val is_common : table -> string -> bool

(** The names of intrinsic functions recognized by the front end. *)
val intrinsics : string list

(** [param_value t name] — the integer value of a PARAMETER constant,
    folding references to other parameters. *)
val param_value : table -> string -> int option

(** [const_eval t e] evaluates [e] to an integer if it only involves
    literals and PARAMETER constants. *)
val const_eval : table -> Ast.expr -> int option

(** [array_dims t name] — declared dimension bounds, each evaluated
    via {!const_eval} when possible. *)
val array_dims : table -> string -> (int option * int option) list

val typ_of : table -> string -> Ast.typ
