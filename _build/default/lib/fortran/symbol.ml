type kind =
  | Scalar
  | Array of (Ast.expr * Ast.expr) list
  | Routine
  | External_fun
  | Intrinsic

type info = {
  name : string;
  typ : Ast.typ;
  kind : kind;
  formal : bool;
  param : Ast.expr option;
  data : Ast.expr option;
  common : string option;
}

module SMap = Map.Make (String)

type table = info SMap.t

let intrinsics =
  [ "ABS"; "MOD"; "MAX"; "MIN"; "SQRT"; "FLOAT"; "INT"; "NINT"; "SIGN";
    "SIN"; "COS"; "TAN"; "EXP"; "LOG"; "DBLE"; "SNGL" ]

let default_implicit_typ name =
  if String.length name = 0 then Ast.Treal
  else
    match name.[0] with
    | 'I' .. 'N' -> Ast.Tinteger
    | _ -> Ast.Treal

(* Per-unit implicit typing: IMPLICIT rules first, then the I-N
   default.  (IMPLICIT NONE programs should declare everything; for
   tool tolerance, undeclared names still get the default rule.) *)
let implicit_typ_in (u : Ast.program_unit) name =
  if String.length name = 0 then Ast.Treal
  else
    let c = Char.uppercase_ascii name.[0] in
    let rec find = function
      | [] -> default_implicit_typ name
      | (typ, ranges) :: rest ->
        if List.exists (fun (a, b) ->
               let a = Char.uppercase_ascii a and b = Char.uppercase_ascii b in
               c >= a && c <= b)
             ranges
        then typ
        else find rest
    in
    find u.Ast.implicits

let intrinsic_typ = function
  | "MOD" | "INT" | "NINT" -> Ast.Tinteger
  | "ABS" | "MAX" | "MIN" | "SIGN" ->
    Ast.Treal (* polymorphic in Fortran; we use context in the interpreter *)
  | _ -> Ast.Treal

let build (u : Ast.program_unit) : table =
  let formals =
    match u.kind with
    | Ast.Main -> []
    | Ast.Subroutine fs | Ast.Function (_, fs) -> fs
  in
  let tbl = ref SMap.empty in
  let add info = tbl := SMap.add info.name info !tbl in
  (* 1. declared names *)
  List.iter
    (fun (d : Ast.decl) ->
      add
        {
          name = d.dname;
          typ = d.dtyp;
          kind = (if d.dims = [] then Scalar else Array d.dims);
          formal = List.mem d.dname formals;
          param = d.init;
          data = d.data_init;
          common = d.common_block;
        })
    u.decls;
  (* 2. undeclared formals get implicit types *)
  List.iter
    (fun f ->
      if not (SMap.mem f !tbl) then
        add
          { name = f; typ = implicit_typ_in u f; kind = Scalar; formal = true;
            param = None; data = None; common = None })
    formals;
  (* 3. names appearing in the body *)
  let seen_index name =
    match SMap.find_opt name !tbl with
    | Some { kind = Array _ | External_fun | Intrinsic | Routine; _ } -> ()
    | Some ({ kind = Scalar; _ } as i) ->
      (* declared scalar used with subscripts: an external function,
         unless intrinsic *)
      if List.mem name intrinsics then add { i with kind = Intrinsic }
      else add { i with kind = External_fun }
    | None ->
      if List.mem name intrinsics then
        add
          { name; typ = intrinsic_typ name; kind = Intrinsic; formal = false;
            param = None; data = None; common = None }
      else
        add
          { name; typ = implicit_typ_in u name; kind = External_fun;
            formal = List.mem name formals; param = None; data = None; common = None }
  in
  let seen_var name =
    if not (SMap.mem name !tbl) then
      add
        { name; typ = implicit_typ_in u name; kind = Scalar;
          formal = List.mem name formals; param = None; data = None; common = None }
  in
  let rec scan_expr e =
    match e with
    | Ast.Var v -> seen_var v
    | Ast.Index (b, args) ->
      seen_index b;
      List.iter scan_expr args
    | Ast.Bin (_, a, b) -> scan_expr a; scan_expr b
    | Ast.Un (_, a) -> scan_expr a
    | Ast.Int _ | Ast.Real _ | Ast.Logic _ | Ast.Str _ -> ()
  in
  Ast.iter_stmts
    (fun s ->
      (match s.Ast.node with
      | Ast.Call (name, _) ->
        add
          { name; typ = Ast.Treal; kind = Routine; formal = false;
            param = None; data = None; common = None }
      | Ast.Do (h, _) -> seen_var h.Ast.dvar
      | Ast.Assign _ | Ast.If _ | Ast.Goto _ | Ast.Continue | Ast.Return
      | Ast.Stop | Ast.Print _ -> ());
      List.iter scan_expr (Ast.stmt_exprs s.Ast.node))
    u.body;
  (* 4. a FUNCTION unit's own name acts as a scalar result variable *)
  (match u.kind with
  | Ast.Function (t, _) ->
    add
      { name = u.uname; typ = t; kind = Scalar; formal = false; param = None; data = None;
        common = None }
  | Ast.Main | Ast.Subroutine _ -> ());
  !tbl

let lookup t name = SMap.find_opt name t
let infos t = SMap.bindings t |> List.map snd

let is_array t name =
  match lookup t name with Some { kind = Array _; _ } -> true | _ -> false

let is_fun_call t name =
  match lookup t name with
  | Some { kind = External_fun | Intrinsic; _ } -> true
  | Some { kind = Scalar | Array _ | Routine; _ } | None -> false

let is_formal t name =
  match lookup t name with Some i -> i.formal | None -> false

let is_common t name =
  match lookup t name with Some i -> i.common <> None | None -> false

let rec const_eval t (e : Ast.expr) : int option =
  match e with
  | Ast.Int n -> Some n
  | Ast.Var v -> (
    match lookup t v with
    | Some { param = Some p; _ } -> const_eval t p
    | _ -> None)
  | Ast.Un (Ast.Neg, a) -> Option.map (fun n -> -n) (const_eval t a)
  | Ast.Bin (op, a, b) -> (
    match (const_eval t a, const_eval t b) with
    | Some x, Some y -> (
      match op with
      | Ast.Add -> Some (x + y)
      | Ast.Sub -> Some (x - y)
      | Ast.Mul -> Some (x * y)
      | Ast.Div -> if y = 0 then None else Some (x / y)
      | Ast.Pow ->
        if y >= 0 && y < 31 then
          Some (int_of_float (float_of_int x ** float_of_int y))
        else None
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.And | Ast.Or
        -> None)
    | _ -> None)
  | Ast.Real _ | Ast.Logic _ | Ast.Str _ | Ast.Index _ | Ast.Un (Ast.Not, _) ->
    None

let param_value t name =
  match lookup t name with
  | Some { param = Some p; _ } -> const_eval t p
  | _ -> None

let array_dims t name =
  match lookup t name with
  | Some { kind = Array dims; _ } ->
    List.map (fun (lo, hi) -> (const_eval t lo, const_eval t hi)) dims
  | _ -> []

let typ_of t name =
  match lookup t name with Some i -> i.typ | None -> default_implicit_typ name
