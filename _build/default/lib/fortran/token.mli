(** Tokens of the Fortran 77 subset.

    Keywords are recognized case-insensitively and carried as {!kw}
    values.  Identifiers are normalized to upper case, matching
    Fortran's case insensitivity. *)

type kw =
  | PROGRAM | SUBROUTINE | FUNCTION | END | ENDDO | ENDIF
  | DO | DOALL | IF | THEN | ELSE | ELSEIF
  | CALL | RETURN | STOP | CONTINUE | GOTO
  | INTEGER | REAL | DOUBLEPREC | LOGICAL
  | DIMENSION | PARAMETER | COMMON | IMPLICIT | NONE
  | PRINT | WRITE | READ | DATA | EXTERNAL

type t =
  | KW of kw
  | IDENT of string        (** upper-cased identifier *)
  | INT_LIT of int
  | REAL_LIT of float
  | STRING_LIT of string
  | PLUS | MINUS | STAR | SLASH | POW
  | LPAREN | RPAREN | COMMA | COLON | ASSIGN
  | LT | LE | GT | GE | EQ | NE
  | AND | OR | NOT
  | TRUE | FALSE
  | NEWLINE                (** statement separator *)
  | EOF

(** [keyword_of_string s] recognizes [s] (any case) as a keyword. *)
val keyword_of_string : string -> kw option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
