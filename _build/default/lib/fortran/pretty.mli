(** Pretty-printer (unparser) for the Fortran subset.

    Output re-parses to a structurally identical AST (statement ids
    and locations excepted) — the round-trip property is enforced by
    the test suite.  Parallel loops print as [PARALLEL DO]. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val expr_to_string : Ast.expr -> string

(** [pp_stmt ~indent ppf s] prints one statement (and its nested body)
    indented by [indent] levels of two spaces each.  Labels print in a
    fixed-width gutter. *)
val pp_stmt : ?indent:int -> Format.formatter -> Ast.stmt -> unit

val pp_stmts : ?indent:int -> Format.formatter -> Ast.stmt list -> unit
val pp_decl : Format.formatter -> Ast.decl -> unit
val pp_unit : Format.formatter -> Ast.program_unit -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val unit_to_string : Ast.program_unit -> string
val stmt_to_string : Ast.stmt -> string

(** [source_lines u] renders a program unit as numbered source lines,
    tagging each line with the id of the statement that produced it
    (declarations and block-closers carry no id).  This is what the
    editor's source pane displays. *)
val source_lines : Ast.program_unit -> (Ast.stmt_id option * string) list

val typ_to_string : Ast.typ -> string
