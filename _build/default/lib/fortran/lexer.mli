(** Lexer for the Fortran 77 subset.

    Accepts free-form source with the following fixed-form courtesies:
    - full-line comments whose first column is [C], [c] or [*];
    - [!] comments anywhere;
    - continuation lines: a trailing [&] joins the next line;
    - statement labels (an integer starting a line) are emitted as
      ordinary {!Token.INT_LIT} tokens, the parser interprets them.

    Multi-word keywords ([END DO], [END IF], [ELSE IF], [GO TO],
    [DOUBLE PRECISION]) are fused into single tokens here, so the
    parser sees [ENDDO], [ENDIF], [ELSEIF], [GOTO], [DOUBLEPREC].

    The classic [1.EQ.2] versus [1.E2] ambiguity is resolved as real
    Fortran compilers do: a dot following a digit string begins a
    dotted operator only if the letters after it spell one and are
    themselves followed by a dot. *)

exception Error of string * Loc.t

(** [tokenize ~file src] lexes [src] into a token list, each paired
    with the location of its first character.  The list always ends
    with [EOF]; consecutive blank lines collapse to one [NEWLINE].
    @raise Error on an illegal character or malformed literal. *)
val tokenize : file:string -> string -> (Token.t * Loc.t) list
