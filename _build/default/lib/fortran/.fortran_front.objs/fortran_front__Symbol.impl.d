lib/fortran/symbol.ml: Ast Char List Map Option String
