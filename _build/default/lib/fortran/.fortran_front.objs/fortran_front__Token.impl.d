lib/fortran/token.ml: Format List Printf String
