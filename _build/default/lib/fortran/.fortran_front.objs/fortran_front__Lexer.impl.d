lib/fortran/lexer.ml: Buffer Char List Loc Option Printf String Token
