lib/fortran/ast.ml: List Loc String
