lib/fortran/symbol.mli: Ast
