lib/fortran/loc.ml: Format Int String
