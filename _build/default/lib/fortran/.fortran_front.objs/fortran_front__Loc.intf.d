lib/fortran/loc.mli: Format
