lib/fortran/pretty.mli: Ast Format
