lib/fortran/pretty.ml: Ast Float Format List Printf String
