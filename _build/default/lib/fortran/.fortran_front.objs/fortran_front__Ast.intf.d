lib/fortran/ast.mli: Loc
