open Ast

(* Operator precedence, used to parenthesize minimally. *)
let prec = function
  | Or -> 1
  | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 4
  | Add | Sub -> 5
  | Mul | Div -> 6
  | Pow -> 8

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Pow -> "**"
  | Lt -> ".LT." | Le -> ".LE." | Gt -> ".GT." | Ge -> ".GE."
  | Eq -> ".EQ." | Ne -> ".NE."
  | And -> ".AND." | Or -> ".OR."

let float_str f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.10g" f

let rec pp_expr_prec ctx ppf e =
  match e with
  | Int n ->
    if n = max_int then Format.pp_print_char ppf '*'
    else if n < 0 then Format.fprintf ppf "(%d)" n
    else Format.pp_print_int ppf n
  | Real f -> Format.pp_print_string ppf (float_str f)
  | Logic true -> Format.pp_print_string ppf ".TRUE."
  | Logic false -> Format.pp_print_string ppf ".FALSE."
  | Str s -> Format.fprintf ppf "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | Var v -> Format.pp_print_string ppf v
  | Index (b, args) ->
    Format.fprintf ppf "%s(%a)" b
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_expr_prec 0))
      args
  | Un (Neg, a) ->
    let need = ctx > 5 in
    if need then Format.pp_print_char ppf '(';
    Format.fprintf ppf "-%a" (pp_expr_prec 7) a;
    if need then Format.pp_print_char ppf ')'
  | Un (Not, a) ->
    let need = ctx > 3 in
    if need then Format.pp_print_char ppf '(';
    Format.fprintf ppf ".NOT. %a" (pp_expr_prec 3) a;
    if need then Format.pp_print_char ppf ')'
  | Bin (op, a, b) ->
    let p = prec op in
    let need = p < ctx in
    if need then Format.pp_print_char ppf '(';
    (* left-assoc: left child keeps p, right child needs p+1 — except
       Pow which is right-assoc in Fortran *)
    let lp, rp = if op = Pow then (p + 1, p) else (p, p + 1) in
    Format.fprintf ppf "%a %s %a" (pp_expr_prec lp) a (binop_str op)
      (pp_expr_prec rp) b;
    if need then Format.pp_print_char ppf ')'

let pp_expr ppf e = pp_expr_prec 0 ppf e
let expr_to_string e = Format.asprintf "%a" pp_expr e

let gutter label =
  match label with
  | Some n -> Printf.sprintf "%-5d " n
  | None -> "      "

let indent_str n = String.make (2 * n) ' '

let rec render_stmt ~indent acc (s : stmt) : (stmt_id option * string) list =
  let line ?(id = Some s.sid) ?(extra = 0) text =
    (id, gutter s.label ^ indent_str (indent + extra) ^ text)
  in
  let closer text =
    (None, gutter None ^ indent_str indent ^ text)
  in
  match s.node with
  | Assign (lhs, rhs) ->
    line (Printf.sprintf "%s = %s" (expr_to_string lhs) (expr_to_string rhs))
    :: acc
  | Call (name, []) -> line (Printf.sprintf "CALL %s" name) :: acc
  | Call (name, args) ->
    line
      (Printf.sprintf "CALL %s(%s)" name
         (String.concat ", " (List.map expr_to_string args)))
    :: acc
  | Goto n -> line (Printf.sprintf "GOTO %d" n) :: acc
  | Continue -> line "CONTINUE" :: acc
  | Return -> line "RETURN" :: acc
  | Stop -> line "STOP" :: acc
  | Print [] -> line "PRINT *" :: acc
  | Print args ->
    line
      (Printf.sprintf "PRINT *, %s"
         (String.concat ", " (List.map expr_to_string args)))
    :: acc
  | Do (h, body) ->
    let kw = if h.parallel then "PARALLEL DO" else "DO" in
    let step =
      match h.step with
      | None -> ""
      | Some s -> Printf.sprintf ", %s" (expr_to_string s)
    in
    let hd =
      line
        (Printf.sprintf "%s %s = %s, %s%s" kw h.dvar (expr_to_string h.lo)
           (expr_to_string h.hi) step)
    in
    let acc = hd :: acc in
    let acc = render_block ~indent:(indent + 1) acc body in
    closer "ENDDO" :: acc
  | If ([ (c, [ single ]) ], [])
    when (match single.node with
         | Assign _ | Call _ | Goto _ | Continue | Return | Stop | Print _ ->
           single.label = None
         | If _ | Do _ -> false) ->
    (* logical IF one-liner *)
    let inner =
      match render_stmt ~indent:0 [] single with
      | [ (_, text) ] ->
        (* strip the gutter *)
        String.trim text
      | _ -> assert false
    in
    line (Printf.sprintf "IF (%s) %s" (expr_to_string c) inner) :: acc
  | If (branches, els) ->
    let acc =
      match branches with
      | [] -> acc
      | (c, body) :: rest ->
        let acc =
          line (Printf.sprintf "IF (%s) THEN" (expr_to_string c)) :: acc
        in
        let acc = render_block ~indent:(indent + 1) acc body in
        List.fold_left
          (fun acc (c, body) ->
            let acc =
              closer (Printf.sprintf "ELSE IF (%s) THEN" (expr_to_string c))
              :: acc
            in
            render_block ~indent:(indent + 1) acc body)
          acc rest
    in
    let acc =
      match els with
      | [] -> acc
      | _ :: _ ->
        let acc = closer "ELSE" :: acc in
        render_block ~indent:(indent + 1) acc els
    in
    closer "ENDIF" :: acc

and render_block ~indent acc stmts =
  List.fold_left (fun acc s -> render_stmt ~indent acc s) acc stmts

let pp_stmt ?(indent = 0) ppf s =
  let lines = List.rev (render_stmt ~indent [] s) in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    (fun ppf (_, l) -> Format.pp_print_string ppf l)
    ppf lines

let pp_stmts ?(indent = 0) ppf stmts =
  List.iter (fun s -> Format.fprintf ppf "%a@." (pp_stmt ~indent) s) stmts

let typ_to_string = function
  | Tinteger -> "INTEGER"
  | Treal -> "REAL"
  | Tdouble -> "DOUBLE PRECISION"
  | Tlogical -> "LOGICAL"

let pp_decl ppf (d : decl) =
  let dims =
    match d.dims with
    | [] -> ""
    | ds ->
      let dim (lo, hi) =
        match lo with
        | Int 1 -> expr_to_string hi
        | _ -> Printf.sprintf "%s:%s" (expr_to_string lo) (expr_to_string hi)
      in
      Printf.sprintf "(%s)" (String.concat ", " (List.map dim ds))
  in
  Format.fprintf ppf "      %s %s%s" (typ_to_string d.dtyp) d.dname dims;
  (match d.init with
  | Some v -> Format.fprintf ppf "@.      PARAMETER (%s = %s)" d.dname (expr_to_string v)
  | None -> ());
  (match d.data_init with
  | Some v -> Format.fprintf ppf "@.      DATA %s /%s/" d.dname (expr_to_string v)
  | None -> ());
  match d.common_block with
  | Some blk -> Format.fprintf ppf "@.      COMMON /%s/ %s" blk d.dname
  | None -> ()

let pp_unit ppf (u : program_unit) =
  (match u.kind with
  | Main -> Format.fprintf ppf "      PROGRAM %s@." u.uname
  | Subroutine [] -> Format.fprintf ppf "      SUBROUTINE %s@." u.uname
  | Subroutine formals ->
    Format.fprintf ppf "      SUBROUTINE %s(%s)@." u.uname
      (String.concat ", " formals)
  | Function (t, formals) ->
    Format.fprintf ppf "      %s FUNCTION %s(%s)@." (typ_to_string t) u.uname
      (String.concat ", " formals));
  if u.implicit_none then Format.fprintf ppf "      IMPLICIT NONE@.";
  List.iter
    (fun (typ, ranges) ->
      Format.fprintf ppf "      IMPLICIT %s (%s)@." (typ_to_string typ)
        (String.concat ", "
           (List.map
              (fun (a, b) ->
                if a = b then String.make 1 a
                else Printf.sprintf "%c-%c" a b)
              ranges)))
    u.implicits;
  List.iter (fun d -> Format.fprintf ppf "%a@." pp_decl d) u.decls;
  pp_stmts ~indent:0 ppf u.body;
  Format.fprintf ppf "      END@."

let pp_program ppf (p : program) =
  List.iter (fun u -> Format.fprintf ppf "%a@." pp_unit u) p.punits

let program_to_string p = Format.asprintf "%a" pp_program p
let unit_to_string u = Format.asprintf "%a" pp_unit u
let stmt_to_string s = Format.asprintf "%a" (pp_stmt ~indent:0) s

let source_lines (u : program_unit) : (stmt_id option * string) list =
  let header =
    match u.kind with
    | Main -> Printf.sprintf "      PROGRAM %s" u.uname
    | Subroutine [] -> Printf.sprintf "      SUBROUTINE %s" u.uname
    | Subroutine formals ->
      Printf.sprintf "      SUBROUTINE %s(%s)" u.uname (String.concat ", " formals)
    | Function (t, formals) ->
      Printf.sprintf "      %s FUNCTION %s(%s)" (typ_to_string t) u.uname
        (String.concat ", " formals)
  in
  let implicit_lines =
    (if u.implicit_none then [ (None, "      IMPLICIT NONE") ] else [])
    @ List.map
        (fun (typ, ranges) ->
          ( None,
            Printf.sprintf "      IMPLICIT %s (%s)" (typ_to_string typ)
              (String.concat ", "
                 (List.map
                    (fun (a, b) ->
                      if a = b then String.make 1 a
                      else Printf.sprintf "%c-%c" a b)
                    ranges)) ))
        u.implicits
  in
  let decl_lines =
    List.concat_map
      (fun d ->
        Format.asprintf "%a" pp_decl d
        |> String.split_on_char '\n'
        |> List.map (fun l -> (None, l)))
      u.decls
  in
  let body = List.rev (render_block ~indent:0 [] u.body) in
  ((None, header) :: implicit_lines) @ decl_lines @ body
  @ [ (None, "      END") ]
