type kw =
  | PROGRAM | SUBROUTINE | FUNCTION | END | ENDDO | ENDIF
  | DO | DOALL | IF | THEN | ELSE | ELSEIF
  | CALL | RETURN | STOP | CONTINUE | GOTO
  | INTEGER | REAL | DOUBLEPREC | LOGICAL
  | DIMENSION | PARAMETER | COMMON | IMPLICIT | NONE
  | PRINT | WRITE | READ | DATA | EXTERNAL

type t =
  | KW of kw
  | IDENT of string
  | INT_LIT of int
  | REAL_LIT of float
  | STRING_LIT of string
  | PLUS | MINUS | STAR | SLASH | POW
  | LPAREN | RPAREN | COMMA | COLON | ASSIGN
  | LT | LE | GT | GE | EQ | NE
  | AND | OR | NOT
  | TRUE | FALSE
  | NEWLINE
  | EOF

let keyword_table : (string * kw) list =
  [ ("PROGRAM", PROGRAM); ("SUBROUTINE", SUBROUTINE); ("FUNCTION", FUNCTION);
    ("END", END); ("ENDDO", ENDDO); ("ENDIF", ENDIF);
    ("DO", DO); ("DOALL", DOALL); ("IF", IF); ("THEN", THEN);
    ("ELSE", ELSE); ("ELSEIF", ELSEIF);
    ("CALL", CALL); ("RETURN", RETURN); ("STOP", STOP);
    ("CONTINUE", CONTINUE); ("GOTO", GOTO);
    ("INTEGER", INTEGER); ("REAL", REAL); ("DOUBLEPRECISION", DOUBLEPREC);
    ("LOGICAL", LOGICAL);
    ("DIMENSION", DIMENSION); ("PARAMETER", PARAMETER); ("COMMON", COMMON);
    ("IMPLICIT", IMPLICIT); ("NONE", NONE);
    ("PRINT", PRINT); ("WRITE", WRITE); ("READ", READ); ("DATA", DATA);
    ("EXTERNAL", EXTERNAL) ]

let keyword_of_string s =
  let u = String.uppercase_ascii s in
  List.assoc_opt u keyword_table

let kw_to_string kw =
  (* the table is small; a linear scan keeps a single source of truth *)
  match List.find_opt (fun (_, k) -> k = kw) keyword_table with
  | Some (s, _) -> s
  | None -> assert false

let to_string = function
  | KW kw -> kw_to_string kw
  | IDENT s -> s
  | INT_LIT n -> string_of_int n
  | REAL_LIT f -> string_of_float f
  | STRING_LIT s -> Printf.sprintf "'%s'" s
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | POW -> "**"
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | COLON -> ":"
  | ASSIGN -> "="
  | LT -> ".LT." | LE -> ".LE." | GT -> ".GT." | GE -> ".GE."
  | EQ -> ".EQ." | NE -> ".NE."
  | AND -> ".AND." | OR -> ".OR." | NOT -> ".NOT."
  | TRUE -> ".TRUE." | FALSE -> ".FALSE."
  | NEWLINE -> "<newline>"
  | EOF -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal (a : t) (b : t) = a = b
