exception Error of string * Loc.t

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;          (* offset of beginning of current line *)
  mutable at_line_start : bool;
}

let loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)
let error st msg = raise (Error (msg, loc st))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek_at st k =
  let i = st.pos + k in
  if i < String.length st.src then Some st.src.[i] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_letter c || is_digit c || c = '_'

(* Skip spaces and [!]-comments; do not cross newlines. *)
let rec skip_blanks st =
  match peek st with
  | Some (' ' | '\t' | '\r') -> advance st; skip_blanks st
  | Some '!' ->
    while peek st <> None && peek st <> Some '\n' do advance st done
  | Some _ | None -> ()

(* A fixed-form comment line: first column is C, c or *. *)
let is_comment_line st =
  st.at_line_start
  &&
  match peek st with
  | Some ('C' | 'c' | '*') -> (
    (* Only a comment when the rest of the line is not an assignment to
       a variable named C...: require the char after to be non-ident or
       the line to have no '=' outside parens.  Classic fixed form says
       column 1; we additionally require a following blank or eol to
       avoid eating identifiers like [CALL]. *)
    match peek_at st 1 with
    | Some (' ' | '\t' | '\n' | '\r') | None -> true
    | Some _ -> ( match peek st with Some '*' -> true | _ -> false))
  | Some _ | None -> false

let skip_line st =
  while peek st <> None && peek st <> Some '\n' do advance st done

let lex_string_lit st =
  let l = loc st in
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None | Some '\n' -> raise (Error ("unterminated string literal", l))
    | Some '\'' -> (
      advance st;
      match peek st with
      | Some '\'' ->
        Buffer.add_char buf '\'';
        advance st;
        go ()
      | Some _ | None -> ())
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  (Token.STRING_LIT (Buffer.contents buf), l)

(* The dotted words that may follow a '.': used to disambiguate
   [1.EQ.2] from [1.E2]. *)
let dotted_words =
  [ "LT"; "LE"; "GT"; "GE"; "EQ"; "NE"; "AND"; "OR"; "NOT"; "TRUE"; "FALSE" ]

let dotted_op_at st k =
  (* Is there a dotted operator spelled starting at offset [k] (which
     points just after a '.')?  Returns the word if the letters from
     [k] spell a dotted word terminated by '.'. *)
  let buf = Buffer.create 8 in
  let rec go i =
    match peek_at st i with
    | Some c when is_letter c ->
      Buffer.add_char buf (Char.uppercase_ascii c);
      go (i + 1)
    | Some '.' ->
      let w = Buffer.contents buf in
      if List.mem w dotted_words then Some (w, i + 1 - k) else None
    | Some _ | None -> None
  in
  go k

let lex_number st =
  let l = loc st in
  let buf = Buffer.create 16 in
  let is_real = ref false in
  let add_digits () =
    while (match peek st with Some c when is_digit c -> true | _ -> false) do
      Buffer.add_char buf (Option.get (peek st));
      advance st
    done
  in
  add_digits ();
  (match peek st with
  | Some '.' when dotted_op_at st 1 = None ->
    is_real := true;
    Buffer.add_char buf '.';
    advance st;
    add_digits ()
  | Some _ | None -> ());
  (match peek st with
  | Some ('e' | 'E' | 'd' | 'D') -> (
    (* exponent: accept only when followed by digit or sign+digit *)
    let sign_ok k =
      match peek_at st k with
      | Some c when is_digit c -> true
      | Some ('+' | '-') -> (
        match peek_at st (k + 1) with Some c when is_digit c -> true | _ -> false)
      | Some _ | None -> false
    in
    if sign_ok 1 then begin
      is_real := true;
      Buffer.add_char buf 'e';
      advance st;
      (match peek st with
      | Some (('+' | '-') as c) ->
        Buffer.add_char buf c;
        advance st
      | Some _ | None -> ());
      add_digits ()
    end)
  | Some _ | None -> ());
  let s = Buffer.contents buf in
  if !is_real then
    match float_of_string_opt s with
    | Some f -> (Token.REAL_LIT f, l)
    | None -> raise (Error (Printf.sprintf "bad real literal %S" s, l))
  else
    match int_of_string_opt s with
    | Some n -> (Token.INT_LIT n, l)
    | None -> raise (Error (Printf.sprintf "bad integer literal %S" s, l))

let lex_dotted st =
  let l = loc st in
  match dotted_op_at st 1 with
  | Some (w, len) ->
    (* consume '.', the word, and the closing '.' *)
    advance st;
    for _ = 1 to len do advance st done;
    let tok =
      match w with
      | "LT" -> Token.LT | "LE" -> Token.LE | "GT" -> Token.GT
      | "GE" -> Token.GE | "EQ" -> Token.EQ | "NE" -> Token.NE
      | "AND" -> Token.AND | "OR" -> Token.OR | "NOT" -> Token.NOT
      | "TRUE" -> Token.TRUE | "FALSE" -> Token.FALSE
      | _ -> assert false
    in
    (tok, l)
  | None -> (
    (* a real literal like [.5] *)
    match peek_at st 1 with
    | Some c when is_digit c ->
      let buf = Buffer.create 8 in
      Buffer.add_string buf "0.";
      advance st;
      while (match peek st with Some c when is_digit c -> true | _ -> false) do
        Buffer.add_char buf (Option.get (peek st));
        advance st
      done;
      (Token.REAL_LIT (float_of_string (Buffer.contents buf)), l)
    | Some _ | None -> error st "unexpected '.'")

let lex_word st =
  let l = loc st in
  let buf = Buffer.create 16 in
  while (match peek st with Some c when is_ident_char c -> true | _ -> false) do
    Buffer.add_char buf (Char.uppercase_ascii (Option.get (peek st)));
    advance st
  done;
  (Buffer.contents buf, l)

let fallback_word w l : Token.t * Loc.t =
  match Token.keyword_of_string w with
  | Some kw -> (Token.KW kw, l)
  | None -> (Token.IDENT w, l)

(* Fuse [END IF] / [END DO] / [ELSE IF] / [GO TO] / [DOUBLE PRECISION]
   into single keyword tokens.  [first] has already been consumed. *)
let fuse_two st first l : Token.t * Loc.t =
  let save_pos = st.pos and save_line = st.line and save_bol = st.bol in
  skip_blanks st;
  let restore () =
    st.pos <- save_pos;
    st.line <- save_line;
    st.bol <- save_bol
  in
  match peek st with
  | Some c when is_letter c -> (
    let w, _ = lex_word st in
    match (first, w) with
    | "END", "IF" -> (Token.KW Token.ENDIF, l)
    | "END", "DO" -> (Token.KW Token.ENDDO, l)
    | "ELSE", "IF" -> (Token.KW Token.ELSEIF, l)
    | "GO", "TO" -> (Token.KW Token.GOTO, l)
    | "DOUBLE", "PRECISION" -> (Token.KW Token.DOUBLEPREC, l)
    | "PARALLEL", "DO" -> (Token.KW Token.DOALL, l)
    | _ ->
      restore ();
      fallback_word first l)
  | Some _ | None ->
    restore ();
    fallback_word first l

let rec lex_token st : Token.t * Loc.t =
  skip_blanks st;
  if is_comment_line st then begin
    skip_line st;
    (match peek st with Some '\n' -> advance st | Some _ | None -> ());
    st.at_line_start <- true;
    lex_token st
  end
  else begin
    let was_line_start = st.at_line_start in
    st.at_line_start <- false;
    match peek st with
    | None -> (Token.EOF, loc st)
    | Some '\n' ->
      let l = loc st in
      advance st;
      st.at_line_start <- true;
      (* collapse blank/comment lines *)
      let rec peek_nonblank () =
        skip_blanks st;
        if is_comment_line st then begin
          skip_line st;
          (match peek st with Some '\n' -> advance st | Some _ | None -> ());
          st.at_line_start <- true;
          peek_nonblank ()
        end
        else
          match peek st with
          | Some '\n' ->
            advance st;
            st.at_line_start <- true;
            peek_nonblank ()
          | Some '&' ->
            (* leading continuation marker: swallow it *)
            advance st;
            `Continued
          | Some _ -> `Stmt
          | None -> `Eof
      in
      (match peek_nonblank () with
      | `Continued -> lex_token st
      | `Stmt | `Eof ->
        st.at_line_start <- true;
        (Token.NEWLINE, l))
    | Some '&' ->
      (* trailing continuation: skip to and over the newline; the next
         line may begin with its own '&' marker *)
      advance st;
      skip_blanks st;
      (match peek st with
      | Some '\n' ->
        advance st;
        skip_blanks st;
        (match peek st with Some '&' -> advance st | Some _ | None -> ());
        st.at_line_start <- false;
        lex_token st
      | Some _ | None -> error st "'&' not at end of line")
    | Some '\'' ->
      st.at_line_start <- was_line_start;
      let r = lex_string_lit st in
      st.at_line_start <- false;
      r
    | Some c when is_digit c -> lex_number st
    | Some '.' -> lex_dotted st
    | Some c when is_letter c ->
      let w, l = lex_word st in
      if List.mem w [ "END"; "ELSE"; "GO"; "DOUBLE"; "PARALLEL" ] then
        fuse_two st w l
      else fallback_word w l
    | Some '+' -> let l = loc st in advance st; (Token.PLUS, l)
    | Some '-' -> let l = loc st in advance st; (Token.MINUS, l)
    | Some '*' ->
      let l = loc st in
      advance st;
      if peek st = Some '*' then begin advance st; (Token.POW, l) end
      else (Token.STAR, l)
    | Some '/' ->
      let l = loc st in
      advance st;
      if peek st = Some '=' then begin advance st; (Token.NE, l) end
      else (Token.SLASH, l)
    | Some '(' -> let l = loc st in advance st; (Token.LPAREN, l)
    | Some ')' -> let l = loc st in advance st; (Token.RPAREN, l)
    | Some ',' -> let l = loc st in advance st; (Token.COMMA, l)
    | Some ':' -> let l = loc st in advance st; (Token.COLON, l)
    | Some '=' ->
      let l = loc st in
      advance st;
      if peek st = Some '=' then begin advance st; (Token.EQ, l) end
      else (Token.ASSIGN, l)
    | Some '<' ->
      let l = loc st in
      advance st;
      if peek st = Some '=' then begin advance st; (Token.LE, l) end
      else (Token.LT, l)
    | Some '>' ->
      let l = loc st in
      advance st;
      if peek st = Some '=' then begin advance st; (Token.GE, l) end
      else (Token.GT, l)
    | Some c -> error st (Printf.sprintf "illegal character %C" c)
  end

let tokenize ~file src =
  let st = { src; file; pos = 0; line = 1; bol = 0; at_line_start = true } in
  let rec go acc =
    let ((tok, _) as t) = lex_token st in
    match tok with
    | Token.EOF -> List.rev (t :: acc)
    | Token.NEWLINE -> (
      (* drop a leading NEWLINE and coalesce duplicates *)
      match acc with
      | [] | (Token.NEWLINE, _) :: _ -> go acc
      | _ :: _ -> go (t :: acc))
    | _ -> go (t :: acc)
  in
  go []
