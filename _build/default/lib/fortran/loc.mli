(** Source locations for the Fortran front end.

    A location is a [line, column] pair (both 1-based) plus the name of
    the source file or buffer it came from.  Locations are attached to
    tokens and statements so that every analysis result and every
    dependence endpoint shown in the editor can point back at source
    text. *)

type t = {
  file : string;  (** file or buffer name, e.g. ["matmul.f"] *)
  line : int;     (** 1-based line number *)
  col : int;      (** 1-based column number *)
}

val make : file:string -> line:int -> col:int -> t

(** A location that means "nowhere": used for synthesized statements
    created by transformations. *)
val none : t

val is_none : t -> bool

(** [compare] orders locations by file, then line, then column. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [pp] prints ["file:line:col"], or ["<synthetic>"] for {!none}. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
