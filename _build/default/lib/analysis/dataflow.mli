(** Generic iterative dataflow framework over a {!Cfg}.

    A problem supplies the lattice (join, equality, initial values)
    and a transfer function; the framework runs a worklist to a fixed
    point and returns the IN and OUT value of every node.

    Termination is the client's obligation: the lattice must have
    finite height along the chains the transfer function produces.
    A safety valve of [max_iterations] (default 10_000 node visits per
    node) aborts with [Failure] otherwise — better a loud failure than
    a silent hang in an interactive tool. *)

type direction = Forward | Backward

type 'a problem = {
  direction : direction;
  boundary : 'a;  (** value at Entry (forward) or Exit (backward) *)
  init : 'a;      (** initial value for all other nodes *)
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
  transfer : Cfg.node -> 'a -> 'a;
}

type 'a result

(** [solve cfg problem] iterates to a fixed point. *)
val solve : Cfg.t -> 'a problem -> 'a result

(** Value flowing into a node (before its transfer function). *)
val input : 'a result -> Cfg.node -> 'a

(** Value flowing out of a node (after its transfer function). *)
val output : 'a result -> Cfg.node -> 'a

(** Number of worklist iterations the solver used (for the bench
    suite's convergence statistics). *)
val iterations : 'a result -> int
