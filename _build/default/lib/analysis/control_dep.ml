open Fortran_front

type edge = { branch : Ast.stmt_id; dependent : Ast.stmt_id }

let compute (cfg : Cfg.t) : edge list =
  let pdom = Dominators.postdominators cfg in
  let edges = ref [] in
  (* For each CFG edge (a, b) where b does not postdominate a, every
     node on the postdominator-tree path from b up to (excluding)
     ipdom(a) is control dependent on a. *)
  List.iter
    (fun a ->
      match a with
      | Cfg.Entry | Cfg.Exit -> ()
      | Cfg.Stmt a_sid ->
        let ipdom_a = Dominators.idom pdom a in
        List.iter
          (fun b ->
            if not (Dominators.dominates pdom b a) then begin
              (* walk b, ipdom(b), ... until ipdom(a) *)
              let rec walk n =
                match (n, ipdom_a) with
                | _, Some stop when Cfg.node_equal n stop -> ()
                | Cfg.Exit, _ -> ()
                | Cfg.Entry, _ -> ()
                | Cfg.Stmt sid, _ ->
                  edges := { branch = a_sid; dependent = sid } :: !edges;
                  (match Dominators.idom pdom n with
                  | Some up -> walk up
                  | None -> ())
              in
              walk b
            end)
          (Cfg.succs cfg a))
    (Cfg.nodes cfg);
  (* dedupe *)
  List.sort_uniq compare !edges

let controllers edges sid =
  List.filter_map
    (fun e -> if e.dependent = sid then Some e.branch else None)
    edges
  |> List.sort_uniq compare

let controlled_by edges sid =
  List.filter_map
    (fun e -> if e.branch = sid then Some e.dependent else None)
    edges
  |> List.sort_uniq compare
