open Fortran_front

type node = Entry | Exit | Stmt of Ast.stmt_id

let node_compare (a : node) (b : node) = compare a b
let node_equal a b = node_compare a b = 0

let pp_node ppf = function
  | Entry -> Format.pp_print_string ppf "entry"
  | Exit -> Format.pp_print_string ppf "exit"
  | Stmt sid -> Format.fprintf ppf "s%d" sid

module NodeOrd = struct
  type t = node

  let compare = node_compare
end

module NodeMap = Map.Make (NodeOrd)
module NodeSet = Set.Make (NodeOrd)

type t = {
  unit_ : Ast.program_unit;
  succs : node list NodeMap.t;
  preds : node list NodeMap.t;
  stmts : (Ast.stmt_id, Ast.stmt) Hashtbl.t;
  order : node list;
}

let find_edges m n = match NodeMap.find_opt n m with Some l -> l | None -> []
let succs t n = find_edges t.succs n
let preds t n = find_edges t.preds n
let nodes t = t.order
let unit_of t = t.unit_

let stmt_of t = function
  | Entry | Exit -> None
  | Stmt sid -> Hashtbl.find_opt t.stmts sid

let size t = NodeMap.cardinal t.succs

(* [wire body ~next] returns the entry node(s) of [body] and registers
   edges so that falling off the end of [body] reaches [next]. *)
let build (u : Ast.program_unit) : t =
  let edges = ref [] in
  let add_edge a b = edges := (a, b) :: !edges in
  let labels = Hashtbl.create 16 in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.label with
      | Some l -> if not (Hashtbl.mem labels l) then Hashtbl.add labels l s.Ast.sid
      | None -> ())
    u.Ast.body;
  let label_target l =
    match Hashtbl.find_opt labels l with
    | Some sid -> Stmt sid
    | None -> failwith (Printf.sprintf "GOTO to unknown label %d" l)
  in
  (* Returns the first node of the statement sequence, given the node
     control reaches after the sequence.  Wires all internal edges. *)
  let rec wire_seq (stmts : Ast.stmt list) ~(next : node) : node =
    match stmts with
    | [] -> next
    | s :: rest ->
      let rest_entry = wire_seq rest ~next in
      wire_stmt s ~next:rest_entry
  and wire_stmt (s : Ast.stmt) ~(next : node) : node =
    let me = Stmt s.Ast.sid in
    (match s.Ast.node with
    | Ast.Assign _ | Ast.Call _ | Ast.Continue | Ast.Print _ -> add_edge me next
    | Ast.Goto l -> add_edge me (label_target l)
    | Ast.Return | Ast.Stop -> add_edge me Exit
    | Ast.If (branches, els) ->
      List.iter
        (fun (_, body) ->
          let entry = wire_seq body ~next in
          add_edge me entry)
        branches;
      let else_entry = wire_seq els ~next in
      add_edge me else_entry
    | Ast.Do (_, body) ->
      (* the DO node evaluates bounds and the trip test: one edge into
         the body, one past the loop (zero-trip); the body's fall-
         through returns to the DO node (back edge) *)
      let body_entry = wire_seq body ~next:me in
      add_edge me body_entry;
      add_edge me next);
    me
  in
  let first = wire_seq u.Ast.body ~next:Exit in
  add_edge Entry first;
  (* collect statement table *)
  let stmts = Hashtbl.create 64 in
  Ast.iter_stmts (fun s -> Hashtbl.replace stmts s.Ast.sid s) u.Ast.body;
  (* build adjacency maps, deduplicating parallel edges *)
  let add_adj m a b =
    let cur = find_edges !m a in
    if not (List.exists (node_equal b) cur) then m := NodeMap.add a (b :: cur) !m
  in
  let succs = ref NodeMap.empty and preds = ref NodeMap.empty in
  let ensure m n = if not (NodeMap.mem n !m) then m := NodeMap.add n [] !m in
  ensure succs Entry; ensure succs Exit; ensure preds Entry; ensure preds Exit;
  Hashtbl.iter
    (fun sid _ ->
      ensure succs (Stmt sid);
      ensure preds (Stmt sid))
    stmts;
  List.iter
    (fun (a, b) ->
      add_adj succs a b;
      add_adj preds b a)
    !edges;
  (* reverse postorder from Entry *)
  let visited = ref NodeSet.empty in
  let order = ref [] in
  let rec dfs n =
    if not (NodeSet.mem n !visited) then begin
      visited := NodeSet.add n !visited;
      List.iter dfs (find_edges !succs n);
      order := n :: !order
    end
  in
  dfs Entry;
  (* unreachable statements, in source order, then Exit if unreached *)
  let extras = ref [] in
  Ast.iter_stmts
    (fun s ->
      let n = Stmt s.Ast.sid in
      if not (NodeSet.mem n !visited) then extras := n :: !extras)
    u.Ast.body;
  let order =
    !order @ List.rev !extras
    @ (if NodeSet.mem Exit !visited then [] else [ Exit ])
  in
  { unit_ = u; succs = !succs; preds = !preds; stmts; order }

let dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph cfg {\n";
  List.iter
    (fun n ->
      let name = Format.asprintf "%a" pp_node n in
      let label =
        match stmt_of t n with
        | Some s ->
          String.trim
            (String.concat " " (String.split_on_char '\n' (Pretty.stmt_to_string s)))
        | None -> name
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=%S];\n" name label);
      List.iter
        (fun m ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s;\n" name (Format.asprintf "%a" pp_node m)))
        (succs t n))
    (nodes t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
