type t = { sets : Cfg.NodeSet.t Cfg.NodeMap.t }

let compute (cfg : Cfg.t) ~(root : Cfg.node) ~(preds : Cfg.node -> Cfg.node list)
    ~(order : Cfg.node list) : t =
  let all = Cfg.NodeSet.of_list (Cfg.nodes cfg) in
  let sets = ref Cfg.NodeMap.empty in
  List.iter
    (fun n ->
      let init =
        if Cfg.node_equal n root then Cfg.NodeSet.singleton root else all
      in
      sets := Cfg.NodeMap.add n init !sets)
    (Cfg.nodes cfg);
  let get n =
    match Cfg.NodeMap.find_opt n !sets with
    | Some s -> s
    | None -> all
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if not (Cfg.node_equal n root) then begin
          let ps = preds n in
          let inter =
            match ps with
            | [] -> Cfg.NodeSet.empty
            | p :: rest ->
              List.fold_left
                (fun acc q -> Cfg.NodeSet.inter acc (get q))
                (get p) rest
          in
          let next = Cfg.NodeSet.add n inter in
          if not (Cfg.NodeSet.equal next (get n)) then begin
            sets := Cfg.NodeMap.add n next !sets;
            changed := true
          end
        end)
      order
  done;
  { sets = !sets }

let dominators cfg =
  compute cfg ~root:Cfg.Entry ~preds:(Cfg.preds cfg) ~order:(Cfg.nodes cfg)

let postdominators cfg =
  compute cfg ~root:Cfg.Exit ~preds:(Cfg.succs cfg)
    ~order:(List.rev (Cfg.nodes cfg))

let dom_set t n =
  match Cfg.NodeMap.find_opt n t.sets with
  | Some s -> s
  | None -> Cfg.NodeSet.empty

let dominates t n m = Cfg.NodeSet.mem n (dom_set t m)

let idom t n =
  (* the strict dominator dominated by all other strict dominators *)
  let strict = Cfg.NodeSet.remove n (dom_set t n) in
  Cfg.NodeSet.fold
    (fun cand acc ->
      let dominated_by_all =
        Cfg.NodeSet.for_all
          (fun other ->
            Cfg.node_equal other cand || Cfg.NodeSet.mem other (dom_set t cand))
          strict
      in
      if dominated_by_all then Some cand else acc)
    strict None
