(** Statement-level control-flow graph of one program unit.

    Nodes are statements (identified by {!Fortran_front.Ast.stmt_id})
    plus distinguished [Entry] and [Exit] nodes.  Statement-level
    granularity (rather than basic blocks) keeps every dataflow result
    directly addressable from the editor, and the programs Ped
    handles are small enough that the extra nodes cost nothing.

    Edges follow structured control flow (IF branches, DO loops with
    their zero-trip exits and back edges) and GOTOs to labels. *)

open Fortran_front

type node = Entry | Exit | Stmt of Ast.stmt_id

val node_compare : node -> node -> int
val node_equal : node -> node -> bool
val pp_node : Format.formatter -> node -> unit

module NodeMap : Map.S with type key = node
module NodeSet : Set.S with type elt = node

type t

(** [build u] constructs the CFG of [u]'s body.
    @raise Failure if a GOTO targets an unknown label. *)
val build : Ast.program_unit -> t

val succs : t -> node -> node list
val preds : t -> node -> node list

(** All nodes in reverse postorder from [Entry] (unreachable statements
    appear after the reachable ones, in source order). *)
val nodes : t -> node list

(** The statement behind a node. *)
val stmt_of : t -> node -> Ast.stmt option

(** Number of nodes, including [Entry] and [Exit]. *)
val size : t -> int

(** The unit this CFG was built from. *)
val unit_of : t -> Ast.program_unit

(** [dot t] renders the graph in Graphviz format (for debugging and
    the editor's call-graph-style displays). *)
val dot : t -> string
