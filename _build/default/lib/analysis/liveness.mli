(** Live-variable analysis (backward).

    A variable is live at a point if some path to [Exit] reads it
    before any strong (scalar) redefinition.  Arrays never kill, so an
    array stays live from first read backwards.  Used to decide
    whether a privatized scalar needs its last value preserved, and by
    the editor's variable pane. *)

open Fortran_front

type t

(** [analyze ~live_out ctx cfg] — [live_out] lists names live after
    the unit returns (COMMON variables and formals escape by default;
    pass [~all_escape:true] to keep everything live at exit, the
    conservative editor setting). *)
val analyze : ?all_escape:bool -> Defuse.ctx -> Cfg.t -> t

(** Variables live just before the statement executes. *)
val live_in : t -> Ast.stmt_id -> string list

(** Variables live just after the statement. *)
val live_out : t -> Ast.stmt_id -> string list

val is_live_in : t -> Ast.stmt_id -> string -> bool
val is_live_out : t -> Ast.stmt_id -> string -> bool

(** Variables live at the unit's exit (the escaping set). *)
val live_at_exit : t -> string list

(** [live_after t cfg loop_sid] — variables live on the paths leaving
    the loop (not around its back edge).  [is_live_out] of a DO
    statement includes everything its body reads, because the loop
    node's successors include the body; this is the right notion for
    "does the value survive the loop". *)
val live_after : t -> Cfg.t -> Ast.stmt_id -> string list

val iterations : t -> int
