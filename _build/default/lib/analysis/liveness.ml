open Fortran_front
module SSet = Set.Make (String)

type t = { result : SSet.t Dataflow.result; iters : int }

let analyze ?(all_escape = false) (ctx : Defuse.ctx) (cfg : Cfg.t) : t =
  let tbl = Defuse.table ctx in
  let escaping =
    List.filter_map
      (fun (i : Symbol.info) ->
        match i.kind with
        | Symbol.Scalar | Symbol.Array _ ->
          if all_escape || i.formal || i.common <> None then Some i.name
          else None
        | Symbol.Routine | Symbol.External_fun | Symbol.Intrinsic -> None)
      (Symbol.infos tbl)
  in
  let boundary = SSet.of_list escaping in
  let transfer node out_set =
    match Cfg.stmt_of cfg node with
    | None -> out_set
    | Some s ->
      let defs = SSet.of_list (Defuse.must_defs ctx s) in
      let uses = SSet.of_list (Defuse.uses ctx s) in
      SSet.union uses (SSet.diff out_set defs)
  in
  let problem =
    {
      Dataflow.direction = Dataflow.Backward;
      boundary;
      init = SSet.empty;
      join = SSet.union;
      equal = SSet.equal;
      transfer;
    }
  in
  let result = Dataflow.solve cfg problem in
  { result; iters = Dataflow.iterations result }

(* With a backward problem, the solver's "output" of a node is the
   value before the node in execution order (live-in), and its "input"
   is live-out. *)
let live_in t sid = SSet.elements (Dataflow.output t.result (Cfg.Stmt sid))
let live_at_exit t = SSet.elements (Dataflow.output t.result Cfg.Exit)

let live_after t cfg loop_sid =
  match Cfg.stmt_of cfg (Cfg.Stmt loop_sid) with
  | Some { Ast.node = Ast.Do (_, body); _ } ->
    let body_sids =
      Ast.fold_stmts (fun acc s -> s.Ast.sid :: acc) [] body
    in
    Cfg.succs cfg (Cfg.Stmt loop_sid)
    |> List.concat_map (fun n ->
           match n with
           | Cfg.Stmt s when not (List.mem s body_sids) -> live_in t s
           | Cfg.Exit -> live_at_exit t
           | Cfg.Stmt _ | Cfg.Entry -> [])
    |> List.sort_uniq String.compare
  | Some _ | None -> []
let live_out t sid = SSet.elements (Dataflow.input t.result (Cfg.Stmt sid))
let is_live_in t sid v = SSet.mem v (Dataflow.output t.result (Cfg.Stmt sid))
let is_live_out t sid v = SSet.mem v (Dataflow.input t.result (Cfg.Stmt sid))
let iterations t = t.iters
