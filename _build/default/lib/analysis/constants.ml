open Fortran_front

type value = Cint of int | Creal of float | Clog of bool

let pp_value ppf = function
  | Cint n -> Format.pp_print_int ppf n
  | Creal f -> Format.pp_print_float ppf f
  | Clog b -> Format.pp_print_string ppf (if b then ".TRUE." else ".FALSE.")

let value_equal a b =
  match (a, b) with
  | Cint x, Cint y -> x = y
  | Creal x, Creal y -> x = y
  | Clog x, Clog y -> x = y
  | (Cint _ | Creal _ | Clog _), _ -> false

type lat = Const of value | Bot

module SMap = Map.Make (String)

(* absent key = Top (optimistically undefined) *)
type env = lat SMap.t

let join_lat a b =
  match (a, b) with
  | Const x, Const y -> if value_equal x y then Const x else Bot
  | Bot, _ | _, Bot -> Bot

let join_env (a : env) (b : env) : env =
  SMap.merge
    (fun _ x y ->
      match (x, y) with
      | Some x, Some y -> Some (join_lat x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None)
    a b

let equal_env (a : env) (b : env) =
  SMap.equal (fun x y -> match (x, y) with
    | Const u, Const v -> value_equal u v
    | Bot, Bot -> true
    | (Const _ | Bot), _ -> false) a b

let to_float = function
  | Cint n -> float_of_int n
  | Creal f -> f
  | Clog _ -> nan

let arith op a b =
  match (a, b) with
  | Cint x, Cint y -> (
    match op with
    | Ast.Add -> Some (Cint (x + y))
    | Ast.Sub -> Some (Cint (x - y))
    | Ast.Mul -> Some (Cint (x * y))
    | Ast.Div -> if y = 0 then None else Some (Cint (x / y))
    | Ast.Pow ->
      if y >= 0 && y < 31 then
        Some (Cint (int_of_float (Float.round (float_of_int x ** float_of_int y))))
      else None
    | _ -> None)
  | (Cint _ | Creal _), (Cint _ | Creal _) -> (
    let x = to_float a and y = to_float b in
    match op with
    | Ast.Add -> Some (Creal (x +. y))
    | Ast.Sub -> Some (Creal (x -. y))
    | Ast.Mul -> Some (Creal (x *. y))
    | Ast.Div -> if y = 0.0 then None else Some (Creal (x /. y))
    | Ast.Pow -> Some (Creal (x ** y))
    | _ -> None)
  | _ -> None

let relational op a b =
  match (a, b) with
  | Clog _, _ | _, Clog _ -> None
  | _ ->
    let x = to_float a and y = to_float b in
    let r =
      match op with
      | Ast.Lt -> x < y
      | Ast.Le -> x <= y
      | Ast.Gt -> x > y
      | Ast.Ge -> x >= y
      | Ast.Eq -> x = y
      | Ast.Ne -> x <> y
      | _ -> assert false
    in
    Some (Clog r)

let eval_with (lookup : string -> value option) (e : Ast.expr) : value option =
  let rec go e =
    match e with
    | Ast.Int n -> Some (Cint n)
    | Ast.Real f -> Some (Creal f)
    | Ast.Logic b -> Some (Clog b)
    | Ast.Str _ -> None
    | Ast.Var v -> lookup v
    | Ast.Index ("ABS", [ a ]) -> (
      match go a with
      | Some (Cint n) -> Some (Cint (abs n))
      | Some (Creal f) -> Some (Creal (Float.abs f))
      | _ -> None)
    | Ast.Index ("MOD", [ a; b ]) -> (
      match (go a, go b) with
      | Some (Cint x), Some (Cint y) when y <> 0 -> Some (Cint (x mod y))
      | _ -> None)
    | Ast.Index ("MAX", args) | Ast.Index ("MIN", args) -> (
      let is_max = match e with Ast.Index ("MAX", _) -> true | _ -> false in
      let vals = List.map go args in
      if List.for_all Option.is_some vals then
        let vals = List.map Option.get vals in
        if List.for_all (function Cint _ -> true | _ -> false) vals then
          let ints = List.map (function Cint n -> n | _ -> 0) vals in
          Some (Cint (List.fold_left (if is_max then max else min)
                        (List.hd ints) (List.tl ints)))
        else
          let fs = List.map to_float vals in
          Some (Creal (List.fold_left (if is_max then Float.max else Float.min)
                         (List.hd fs) (List.tl fs)))
      else None)
    | Ast.Index _ -> None
    | Ast.Un (Ast.Neg, a) -> (
      match go a with
      | Some (Cint n) -> Some (Cint (-n))
      | Some (Creal f) -> Some (Creal (-.f))
      | _ -> None)
    | Ast.Un (Ast.Not, a) -> (
      match go a with Some (Clog b) -> Some (Clog (not b)) | _ -> None)
    | Ast.Bin (op, a, b) -> (
      match (op, go a, go b) with
      | Ast.And, Some (Clog x), Some (Clog y) -> Some (Clog (x && y))
      | Ast.Or, Some (Clog x), Some (Clog y) -> Some (Clog (x || y))
      | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow), Some x, Some y ->
        arith op x y
      | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), Some x, Some y
        -> relational op x y
      | _ -> None)
  in
  go e

type t = {
  ctx : Defuse.ctx;
  result : env Dataflow.result;
  iters : int;
}

let analyze (ctx : Defuse.ctx) (cfg : Cfg.t) : t =
  let tbl = Defuse.table ctx in
  let boundary =
    List.fold_left
      (fun acc (i : Symbol.info) ->
        match i.kind with
        | Symbol.Scalar | Symbol.Array _ ->
          if i.param <> None then
            match Symbol.param_value tbl i.name with
            | Some n -> SMap.add i.name (Const (Cint n)) acc
            | None -> acc
          else if i.formal || i.common <> None then SMap.add i.name Bot acc
          else acc
        | Symbol.Routine | Symbol.External_fun | Symbol.Intrinsic -> acc)
      SMap.empty (Symbol.infos tbl)
  in
  let lookup_in env v =
    match Symbol.param_value tbl v with
    | Some n -> Some (Cint n)
    | None -> (
      match SMap.find_opt v env with
      | Some (Const c) -> Some c
      | Some Bot | None -> None)
  in
  let transfer node (env : env) =
    match node with
    | Cfg.Entry | Cfg.Exit -> env
    | Cfg.Stmt _ -> (
      match Cfg.stmt_of cfg node with
      | None -> env
      | Some s -> (
        match s.Ast.node with
        | Ast.Assign (Ast.Var v, rhs) -> (
          match eval_with (lookup_in env) rhs with
          | Some c -> SMap.add v (Const c) env
          | None -> SMap.add v Bot env)
        | Ast.Do (h, _) ->
          (* the induction variable varies; a proven single-trip loop
             could keep it constant, but Ped treats it as varying *)
          SMap.add h.Ast.dvar Bot env
        | Ast.Assign _ | Ast.Call _ | Ast.If _ | Ast.Goto _ | Ast.Continue
        | Ast.Return | Ast.Stop | Ast.Print _ ->
          List.fold_left
            (fun env v -> SMap.add v Bot env)
            env (Defuse.may_defs ctx s)))
  in
  let problem =
    {
      Dataflow.direction = Dataflow.Forward;
      boundary;
      init = SMap.empty;
      join = join_env;
      equal = equal_env;
      transfer;
    }
  in
  let result = Dataflow.solve cfg problem in
  { ctx; result; iters = Dataflow.iterations result }

let env_at t sid = Dataflow.input t.result (Cfg.Stmt sid)

let const_of_var t sid var =
  let tbl = Defuse.table t.ctx in
  match Symbol.param_value tbl var with
  | Some n -> Some (Cint n)
  | None -> (
    match SMap.find_opt var (env_at t sid) with
    | Some (Const c) -> Some c
    | Some Bot | None -> None)

let const_at t sid e = eval_with (fun v -> const_of_var t sid v) e

let int_at t sid e =
  match const_at t sid e with Some (Cint n) -> Some n | _ -> None

let iterations t = t.iters
