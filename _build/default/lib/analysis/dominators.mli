(** Dominator and postdominator computation (iterative set algorithm).

    Sizes here are editor-scale, so the simple O(n²) set iteration is
    the right tool; it is also trivially correct, which matters more.
    Postdominators feed control-dependence construction. *)

type t

(** Dominators: [n] dominates [m] if every path Entry→m passes n. *)
val dominators : Cfg.t -> t

(** Postdominators: [n] postdominates [m] if every path m→Exit passes n. *)
val postdominators : Cfg.t -> t

val dominates : t -> Cfg.node -> Cfg.node -> bool

(** Immediate dominator (or postdominator), if any. *)
val idom : t -> Cfg.node -> Cfg.node option

(** Set of dominators of a node, including itself. *)
val dom_set : t -> Cfg.node -> Cfg.NodeSet.t
