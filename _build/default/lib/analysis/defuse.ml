open Fortran_front

type call_effects = {
  ce_mods : string list;
  ce_refs : string list;
  ce_kills : string list;
}

type call_oracle = Ast.stmt -> call_effects option

type ctx = {
  tbl : Symbol.table;
  unit_ : Ast.program_unit;
  oracle : call_oracle;
  commons : string list;
}

let make ?(oracle = fun _ -> None) tbl unit_ =
  let commons =
    List.filter_map
      (fun (i : Symbol.info) -> if i.common <> None then Some i.name else None)
      (Symbol.infos tbl)
  in
  { tbl; unit_; oracle; commons }

let table ctx = ctx.tbl

let uniq l = List.sort_uniq String.compare l

(* Variables read by an expression.  Subscripted names that denote
   function calls contribute their base name only as a "use" of the
   function, which we drop (functions are not data). *)
let rec expr_reads ctx (e : Ast.expr) : string list =
  match e with
  | Ast.Var v -> [ v ]
  | Ast.Index (b, args) ->
    let base = if Symbol.is_fun_call ctx.tbl b then [] else [ b ] in
    base @ List.concat_map (expr_reads ctx) args
  | Ast.Bin (_, a, b) -> expr_reads ctx a @ expr_reads ctx b
  | Ast.Un (_, a) -> expr_reads ctx a
  | Ast.Int _ | Ast.Real _ | Ast.Logic _ | Ast.Str _ -> []

(* Actual arguments of a CALL that a callee could modify: variables and
   array (element) arguments.  Expressions are passed by temporary. *)
let modifiable_actuals ctx args =
  List.filter_map
    (function
      | Ast.Var v -> Some v
      | Ast.Index (b, _) when not (Symbol.is_fun_call ctx.tbl b) -> Some b
      | Ast.Index _ | Ast.Int _ | Ast.Real _ | Ast.Logic _ | Ast.Str _
      | Ast.Bin _ | Ast.Un _ -> None)
    args

let call_effects ctx (s : Ast.stmt) : call_effects =
  match ctx.oracle s with
  | Some eff -> eff
  | None -> (
    match s.Ast.node with
    | Ast.Call (_, args) ->
      let mods = modifiable_actuals ctx args @ ctx.commons in
      let us = List.concat_map (expr_reads ctx) args @ ctx.commons in
      { ce_mods = uniq mods; ce_refs = uniq us; ce_kills = [] }
    | _ -> { ce_mods = []; ce_refs = []; ce_kills = [] })

let may_defs ctx (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Assign (Ast.Var v, _) -> [ v ]
  | Ast.Assign (Ast.Index (b, _), _) -> [ b ]
  | Ast.Assign (_, _) -> []
  | Ast.Do (h, _) -> [ h.Ast.dvar ]
  | Ast.Call _ -> (call_effects ctx s).ce_mods
  | Ast.If _ | Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop | Ast.Print _
    -> []

let must_defs ctx (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Assign (Ast.Var v, _) -> [ v ]
  | Ast.Do (h, _) -> [ h.Ast.dvar ]
  | Ast.Call _ -> (call_effects ctx s).ce_kills
  | Ast.Assign _ | Ast.If _ | Ast.Goto _ | Ast.Continue
  | Ast.Return | Ast.Stop | Ast.Print _ -> []

let uses ctx (s : Ast.stmt) =
  let exprs =
    match s.Ast.node with
    | Ast.Assign (Ast.Index (_, idxs), rhs) -> rhs :: idxs
    | Ast.Assign (_, rhs) -> [ rhs ]
    | Ast.If (branches, _) -> List.map fst branches
    | Ast.Do (h, _) -> (
      [ h.Ast.lo; h.Ast.hi ] @ match h.Ast.step with Some e -> [ e ] | None -> [])
    | Ast.Print args -> args
    | Ast.Call _ -> []
    | Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop -> []
  in
  let base = List.concat_map (expr_reads ctx) exprs in
  let call_uses =
    match s.Ast.node with
    | Ast.Call _ -> (call_effects ctx s).ce_refs
    | _ -> []
  in
  uniq (base @ call_uses)

let is_array ctx name = Symbol.is_array ctx.tbl name

let array_writes ctx (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Assign (Ast.Index (b, idxs), _) when is_array ctx b -> [ (b, idxs) ]
  | _ -> []

(* Array reads inside an expression, including subscripts of writes. *)
let rec expr_array_reads ctx (e : Ast.expr) : (string * Ast.expr list) list =
  match e with
  | Ast.Index (b, args) ->
    let here = if is_array ctx b then [ (b, args) ] else [] in
    here @ List.concat_map (expr_array_reads ctx) args
  | Ast.Bin (_, a, b) -> expr_array_reads ctx a @ expr_array_reads ctx b
  | Ast.Un (_, a) -> expr_array_reads ctx a
  | Ast.Var _ | Ast.Int _ | Ast.Real _ | Ast.Logic _ | Ast.Str _ -> []

let array_reads ctx (s : Ast.stmt) =
  let exprs =
    match s.Ast.node with
    | Ast.Assign (Ast.Index (_, idxs), rhs) -> rhs :: idxs
    | Ast.Assign (_, rhs) -> [ rhs ]
    | Ast.If (branches, _) -> List.map fst branches
    | Ast.Do (h, _) -> (
      [ h.Ast.lo; h.Ast.hi ] @ match h.Ast.step with Some e -> [ e ] | None -> [])
    | Ast.Print args -> args
    | Ast.Call (_, args) ->
      (* array elements passed to a call are reads (and possibly
         writes, which [may_defs] reports at whole-array level) *)
      args
    | Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop -> []
  in
  List.concat_map (expr_array_reads ctx) exprs

let scalar_writes ctx s =
  List.filter (fun v -> not (is_array ctx v)) (may_defs ctx s)

let scalar_reads ctx s = List.filter (fun v -> not (is_array ctx v)) (uses ctx s)

let effects_of_call ctx s = call_effects ctx s
