(** Flow-sensitive scalar constant propagation.

    The classic optimistic lattice: unknown (top) / a single constant /
    varying (bottom), pointwise over scalar variables.  PARAMETER
    constants seed the environment; formals and COMMON variables start
    varying.  DO induction variables are varying inside their loop.

    Dependence analysis queries {!const_at} to evaluate loop bounds,
    steps and symbolic subscript terms at a particular statement —
    the "analysis of interprocedural and intraprocedural constants"
    that Ped's dependence tests rely on. *)

open Fortran_front

type value = Cint of int | Creal of float | Clog of bool

val pp_value : Format.formatter -> value -> unit

type t

val analyze : Defuse.ctx -> Cfg.t -> t

(** Constant value of [var] on entry to statement [sid], if the
    analysis proved one. *)
val const_of_var : t -> Ast.stmt_id -> string -> value option

(** Evaluate [e] at the program point before [sid] using proven
    constants and PARAMETER values. *)
val const_at : t -> Ast.stmt_id -> Ast.expr -> value option

(** Same, but demanding an integer. *)
val int_at : t -> Ast.stmt_id -> Ast.expr -> int option

(** Pure evaluator used by other analyses: evaluate [e] given an
    oracle for variable values. *)
val eval_with : (string -> value option) -> Ast.expr -> value option

val iterations : t -> int
