open Fortran_front

type reduction_op = Rsum | Rprod | Rmax | Rmin

type classification =
  | Induction of { stride : Symbolic.Linear.t option }
  | Reduction of reduction_op
  | Private of { needs_last_value : bool }
  | Shared_safe
  | Shared_unsafe

let classification_to_string = function
  | Induction _ -> "induction"
  | Reduction Rsum -> "reduction(+)"
  | Reduction Rprod -> "reduction(*)"
  | Reduction Rmax -> "reduction(max)"
  | Reduction Rmin -> "reduction(min)"
  | Private { needs_last_value = true } -> "private(lastvalue)"
  | Private { needs_last_value = false } -> "private"
  | Shared_safe -> "shared"
  | Shared_unsafe -> "shared(unsafe)"

let pp_classification ppf c =
  Format.pp_print_string ppf (classification_to_string c)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = classification SMap.t

(* ------------------------------------------------------------------ *)
(* Structured region summaries: upward-exposed uses and must-defs.     *)
(* ------------------------------------------------------------------ *)

exception Unstructured

(* Returns (upward_exposed_uses, must_defs) of the region.  Raises
   [Unstructured] on GOTO/RETURN/STOP, where the straight-line
   composition below would be unsound. *)
let rec region_summary ctx (stmts : Ast.stmt list) : SSet.t * SSet.t =
  List.fold_left
    (fun (ue, md) s ->
      let s_ue, s_md = stmt_summary ctx s in
      (SSet.union ue (SSet.diff s_ue md), SSet.union md s_md))
    (SSet.empty, SSet.empty) stmts

and stmt_summary ctx (s : Ast.stmt) : SSet.t * SSet.t =
  match s.Ast.node with
  | Ast.Goto _ | Ast.Return | Ast.Stop -> raise Unstructured
  | Ast.If (branches, els) ->
    let cond_uses =
      SSet.of_list
        (List.concat_map (fun (c, _) -> Ast.expr_vars c) branches)
    in
    let bodies = List.map snd branches @ [ els ] in
    let summaries = List.map (region_summary ctx) bodies in
    let ue =
      List.fold_left (fun acc (u, _) -> SSet.union acc u) cond_uses summaries
    in
    let md =
      match summaries with
      | [] -> SSet.empty
      | (_, m) :: rest ->
        List.fold_left (fun acc (_, m') -> SSet.inter acc m') m rest
    in
    (ue, md)
  | Ast.Do (h, body) ->
    let bound_uses = SSet.of_list (List.concat_map Ast.expr_vars
      ([ h.Ast.lo; h.Ast.hi ] @ Option.to_list h.Ast.step)) in
    let body_ue, _body_md = region_summary ctx body in
    (* the loop may run zero times: only the induction variable is a
       must-def (the header always assigns it) *)
    (SSet.union bound_uses (SSet.remove h.Ast.dvar body_ue),
     SSet.singleton h.Ast.dvar)
  | Ast.Assign _ | Ast.Call _ | Ast.Continue | Ast.Print _ ->
    (SSet.of_list (Defuse.uses ctx s), SSet.of_list (Defuse.must_defs ctx s))

(* ------------------------------------------------------------------ *)
(* Auxiliary induction variables                                       *)
(* ------------------------------------------------------------------ *)

let aux_inductions ctx (loop : Ast.stmt) : (string * int * Ast.stmt_id) list =
  match loop.Ast.node with
  | Ast.Do (h, body) ->
    (* candidates: top-level statements K = K + c / K = K - c with a
       literal (or simplifiable) integer stride *)
    let stride_of v rhs =
      match Ast.simplify rhs with
      | Ast.Bin (Ast.Add, Ast.Var v', Ast.Int c) when String.equal v v' -> Some c
      | Ast.Bin (Ast.Add, Ast.Int c, Ast.Var v') when String.equal v v' -> Some c
      | Ast.Bin (Ast.Sub, Ast.Var v', Ast.Int c) when String.equal v v' ->
        Some (-c)
      | _ -> None
    in
    let candidates =
      List.filter_map
        (fun (s : Ast.stmt) ->
          match s.Ast.node with
          | Ast.Assign (Ast.Var v, rhs) -> (
            match stride_of v rhs with
            | Some c -> Some (v, c, s.Ast.sid)
            | None -> None)
          | _ -> None)
        body
    in
    (* keep those with no other definition anywhere in the body *)
    List.filter
      (fun (v, _, sid) ->
        String.equal v h.Ast.dvar = false
        && Ast.fold_stmts
             (fun acc (s : Ast.stmt) ->
               acc
               && (s.Ast.sid = sid || not (List.mem v (Defuse.may_defs ctx s))))
             true body)
      candidates
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Reduction recognition                                               *)
(* ------------------------------------------------------------------ *)

(* Additive terms of an expression with their polarity: [S + A - B]
   yields [(S,+); (A,+); (B,-)]. *)
let rec sum_terms pos (e : Ast.expr) : (Ast.expr * bool) list =
  match e with
  | Ast.Bin (Ast.Add, a, b) -> sum_terms pos a @ sum_terms pos b
  | Ast.Bin (Ast.Sub, a, b) -> sum_terms pos a @ sum_terms (not pos) b
  | Ast.Un (Ast.Neg, a) -> sum_terms (not pos) a
  | _ -> [ (e, pos) ]

let rec prod_factors (e : Ast.expr) : Ast.expr list =
  match e with
  | Ast.Bin (Ast.Mul, a, b) -> prod_factors a @ prod_factors b
  | _ -> [ e ]

let reduction_op_of v (rhs : Ast.expr) : reduction_op option =
  (* sum:  the accumulator appears exactly once, positively, as a
     whole additive term (v = v + e1 - e2 + ...);
     prod: exactly once as a whole factor (v = v * e);
     max/min: v = MAX(v, e) / MIN(v, e) in either argument order.
     Everything else referencing v disqualifies. *)
  let is_v = function Ast.Var v' -> String.equal v v' | _ -> false in
  let free e = not (List.mem v (Ast.expr_vars e)) in
  let terms = sum_terms true rhs in
  let v_terms, others = List.partition (fun (e, _) -> is_v e) terms in
  match (v_terms, others) with
  | [ (_, true) ], _ when List.for_all (fun (e, _) -> free e) others ->
    if others = [] then None (* v = v: not a reduction *) else Some Rsum
  | _ -> (
    let factors = prod_factors rhs in
    let v_factors, other_f = List.partition is_v factors in
    match v_factors with
    | [ _ ] when other_f <> [] && List.for_all free other_f -> Some Rprod
    | _ -> (
      match rhs with
      | Ast.Index ("MAX", [ a; b ]) when is_v a && free b -> Some Rmax
      | Ast.Index ("MAX", [ a; b ]) when is_v b && free a -> Some Rmax
      | Ast.Index ("MIN", [ a; b ]) when is_v a && free b -> Some Rmin
      | Ast.Index ("MIN", [ a; b ]) when is_v b && free a -> Some Rmin
      | _ -> None))

(* Is every occurrence of [v] in the body confined to reduction
   statements of a single operation? *)
let reduction_class ctx body v : reduction_op option =
  let ops = ref [] in
  let ok =
    Ast.fold_stmts
      (fun acc (s : Ast.stmt) ->
        if not acc then false
        else
          match s.Ast.node with
          | Ast.Assign (Ast.Var v', rhs) when String.equal v v' -> (
            match reduction_op_of v rhs with
            | Some op ->
              ops := op :: !ops;
              true
            | None -> false)
          | _ ->
            (* v must not be read or written by any other statement *)
            (not (List.mem v (Defuse.uses ctx s)))
            && not (List.mem v (Defuse.may_defs ctx s)))
      true body
  in
  if not ok then None
  else
    match List.sort_uniq compare !ops with
    | [ op ] -> Some op
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let classify ?(recognize_reductions = true) ?cfg ctx (liveness : Liveness.t)
    (loop : Ast.stmt) : t =
  match loop.Ast.node with
  | Ast.Do (h, body) ->
    let tbl = Defuse.table ctx in
    let is_scalar v =
      match Symbol.lookup tbl v with
      | Some { kind = Symbol.Scalar; _ } -> true
      | _ -> false
    in
    (* all scalars mentioned in the body or header *)
    let mentioned =
      Ast.fold_stmts
        (fun acc s ->
          SSet.union acc
            (SSet.of_list (Defuse.uses ctx s @ Defuse.may_defs ctx s)))
        (SSet.of_list
           (List.concat_map Ast.expr_vars
              ([ h.Ast.lo; h.Ast.hi ] @ Option.to_list h.Ast.step)))
        body
      |> SSet.filter is_scalar
    in
    let written =
      Ast.fold_stmts
        (fun acc s -> SSet.union acc (SSet.of_list (Defuse.may_defs ctx s)))
        SSet.empty body
      |> SSet.filter is_scalar
    in
    let auxs = aux_inductions ctx loop in
    let structured, ue =
      match region_summary ctx body with
      | ue, _ -> (true, ue)
      | exception Unstructured -> (false, SSet.empty)
    in
    let live_after =
      match cfg with
      | Some cfg ->
        let l = Liveness.live_after liveness cfg loop.Ast.sid in
        fun v -> List.mem v l
      | None -> fun v -> Liveness.is_live_out liveness loop.Ast.sid v
    in
    let classify_var v =
      if String.equal v h.Ast.dvar then
        Induction { stride = None }
      else
        match List.find_opt (fun (a, _, _) -> String.equal a v) auxs with
        | Some (_, c, _) ->
          Induction { stride = Some (Symbolic.Linear.const c) }
        | None ->
          if not (SSet.mem v written) then Shared_safe
          else if not structured then Shared_unsafe
          else if
            recognize_reductions && reduction_class ctx body v <> None
          then
            Reduction (Option.get (reduction_class ctx body v))
          else if not (SSet.mem v ue) then
            (* killed on every iteration before any use: privatizable *)
            Private { needs_last_value = live_after v }
          else Shared_unsafe
    in
    SSet.fold (fun v acc -> SMap.add v (classify_var v) acc) mentioned SMap.empty
  | _ -> invalid_arg "Varclass.classify: not a DO loop"

let lookup t v = SMap.find_opt v t
let all t = SMap.bindings t

let parallelizable t =
  SMap.for_all (fun _ c -> match c with Shared_unsafe -> false | _ -> true) t

let blockers t =
  SMap.bindings t
  |> List.filter_map (fun (v, c) ->
         match c with Shared_unsafe -> Some v | _ -> None)
