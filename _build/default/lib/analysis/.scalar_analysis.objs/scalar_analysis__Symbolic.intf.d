lib/analysis/symbolic.mli: Ast Cfg Defuse Format Fortran_front Reaching
