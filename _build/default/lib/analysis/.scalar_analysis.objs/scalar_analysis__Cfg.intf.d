lib/analysis/cfg.mli: Ast Format Fortran_front Map Set
