lib/analysis/varclass.mli: Ast Cfg Defuse Format Fortran_front Liveness Symbolic
