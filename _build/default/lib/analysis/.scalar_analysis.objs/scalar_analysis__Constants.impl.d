lib/analysis/constants.ml: Ast Cfg Dataflow Defuse Float Format Fortran_front List Map Option String Symbol
