lib/analysis/reaching.mli: Ast Cfg Defuse Fortran_front
