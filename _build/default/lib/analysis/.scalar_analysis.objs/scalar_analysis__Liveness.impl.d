lib/analysis/liveness.ml: Ast Cfg Dataflow Defuse Fortran_front List Set String Symbol
