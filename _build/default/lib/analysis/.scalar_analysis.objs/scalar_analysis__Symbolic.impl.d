lib/analysis/symbolic.ml: Ast Cfg Defuse Format Fortran_front List Option Reaching String Symbol
