lib/analysis/dominators.mli: Cfg
