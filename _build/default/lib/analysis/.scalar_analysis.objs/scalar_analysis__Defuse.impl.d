lib/analysis/defuse.ml: Ast Fortran_front List String Symbol
