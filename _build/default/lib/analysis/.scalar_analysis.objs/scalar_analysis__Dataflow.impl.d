lib/analysis/dataflow.ml: Cfg Hashtbl List Queue
