lib/analysis/dominators.ml: Cfg List
