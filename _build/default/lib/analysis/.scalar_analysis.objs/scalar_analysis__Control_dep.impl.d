lib/analysis/control_dep.ml: Ast Cfg Dominators Fortran_front List
