lib/analysis/varclass.ml: Ast Defuse Format Fortran_front List Liveness Map Option Set String Symbol Symbolic
