lib/analysis/cfg.ml: Ast Buffer Format Fortran_front Hashtbl List Map Pretty Printf Set String
