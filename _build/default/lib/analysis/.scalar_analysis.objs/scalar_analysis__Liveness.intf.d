lib/analysis/liveness.mli: Ast Cfg Defuse Fortran_front
