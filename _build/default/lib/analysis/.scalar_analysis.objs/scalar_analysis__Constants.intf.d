lib/analysis/constants.mli: Ast Cfg Defuse Format Fortran_front
