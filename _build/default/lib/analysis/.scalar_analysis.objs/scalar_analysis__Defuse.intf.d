lib/analysis/defuse.mli: Ast Fortran_front Symbol
