lib/analysis/control_dep.mli: Ast Cfg Fortran_front
