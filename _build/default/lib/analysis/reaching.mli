(** Reaching definitions and def-use chains.

    A definition point is a CFG node paired with the variable it may
    define; [Entry] stands for the value a variable has on entry to
    the unit (formal parameters, COMMON storage, or simply Fortran's
    static allocation of locals).  Array definitions are weak: they
    generate but never kill.

    Def-use chains are the backbone of the editor's variable pane and
    of scalar dependence construction. *)

open Fortran_front

type def = { def_at : Cfg.node; def_var : string }

val def_compare : def -> def -> int

type t

val analyze : Defuse.ctx -> Cfg.t -> t

(** Definitions reaching the program point just before [node]. *)
val reaching_in : t -> Cfg.node -> def list

(** Definitions of [var] reaching the use at statement [sid]. *)
val defs_of_use : t -> Ast.stmt_id -> string -> def list

(** When exactly one non-entry definition reaches the use, return it. *)
val unique_def : t -> Ast.stmt_id -> string -> Ast.stmt_id option

(** All def-use chains: [(def, use_sid)] pairs where the use reads the
    def's variable. *)
val chains : t -> (def * Ast.stmt_id) list

(** Solver iterations (bench statistics). *)
val iterations : t -> int
