open Fortran_front

module Linear = struct
  type t = { const : int; terms : (string * int) list }

  let const c = { const = c; terms = [] }
  let sym s = { const = 0; terms = [ (s, 1) ] }

  let normalize terms =
    terms
    |> List.filter (fun (_, c) -> c <> 0)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let merge f a b =
    let rec go xs ys =
      match (xs, ys) with
      | [], rest -> List.map (fun (s, c) -> (s, f 0 c)) rest
      | rest, [] -> List.map (fun (s, c) -> (s, f c 0)) rest
      | (sx, cx) :: xs', (sy, cy) :: ys' ->
        let cmp = String.compare sx sy in
        if cmp = 0 then (sx, f cx cy) :: go xs' ys'
        else if cmp < 0 then (sx, f cx 0) :: go xs' ys
        else (sy, f 0 cy) :: go xs ys'
    in
    normalize (go a b)

  let add a b =
    { const = a.const + b.const; terms = merge ( + ) a.terms b.terms }

  let neg a =
    { const = -a.const; terms = List.map (fun (s, c) -> (s, -c)) a.terms }

  let sub a b = add a (neg b)

  let scale k a =
    if k = 0 then const 0
    else { const = k * a.const; terms = normalize (List.map (fun (s, c) -> (s, k * c)) a.terms) }

  let equal a b = a.const = b.const && a.terms = b.terms
  let is_const a = if a.terms = [] then Some a.const else None
  let coeff s a = match List.assoc_opt s a.terms with Some c -> c | None -> 0
  let syms a = List.map fst a.terms

  let split s a =
    let c = coeff s a in
    (c, { a with terms = List.filter (fun (x, _) -> not (String.equal x s)) a.terms })

  let pp ppf a =
    let first = ref true in
    let emit_sign c =
      if !first then begin
        if c < 0 then Format.pp_print_string ppf "-";
        first := false
      end
      else Format.pp_print_string ppf (if c < 0 then " - " else " + ")
    in
    List.iter
      (fun (s, c) ->
        emit_sign c;
        let a = abs c in
        if a = 1 then Format.pp_print_string ppf s
        else Format.fprintf ppf "%d*%s" a s)
      a.terms;
    if a.const <> 0 || a.terms = [] then begin
      emit_sign a.const;
      Format.pp_print_int ppf (abs a.const)
    end

  let to_string a = Format.asprintf "%a" pp a

  let to_expr a =
    let term (s, c) =
      if c = 1 then Ast.Var s
      else if c = -1 then Ast.Un (Ast.Neg, Ast.Var s)
      else Ast.Bin (Ast.Mul, Ast.Int c, Ast.Var s)
    in
    match a.terms with
    | [] -> Ast.Int a.const
    | t0 :: rest ->
      let base =
        List.fold_left
          (fun acc (s, c) ->
            if c < 0 then
              Ast.Bin (Ast.Sub, acc, term (s, -c))
            else Ast.Bin (Ast.Add, acc, term (s, c)))
          (term t0) rest
      in
      if a.const = 0 then base
      else if a.const < 0 then Ast.Bin (Ast.Sub, base, Ast.Int (-a.const))
      else Ast.Bin (Ast.Add, base, Ast.Int a.const)

  let eval lookup a =
    List.fold_left
      (fun acc (s, c) ->
        match (acc, lookup s) with
        | Some total, Some v -> Some (total + (c * v))
        | _ -> None)
      (Some a.const) a.terms
end

let linearize ~resolve (e : Ast.expr) : Linear.t option =
  let rec go e =
    match e with
    | Ast.Int n -> Some (Linear.const n)
    | Ast.Var v -> (
      match resolve v with
      | Some lin -> Some lin
      | None -> Some (Linear.sym v))
    | Ast.Un (Ast.Neg, a) -> Option.map Linear.neg (go a)
    | Ast.Bin (Ast.Add, a, b) -> (
      match (go a, go b) with
      | Some x, Some y -> Some (Linear.add x y)
      | _ -> None)
    | Ast.Bin (Ast.Sub, a, b) -> (
      match (go a, go b) with
      | Some x, Some y -> Some (Linear.sub x y)
      | _ -> None)
    | Ast.Bin (Ast.Mul, a, b) -> (
      match (go a, go b) with
      | Some x, Some y -> (
        match (Linear.is_const x, Linear.is_const y) with
        | Some k, _ -> Some (Linear.scale k y)
        | _, Some k -> Some (Linear.scale k x)
        | None, None -> None)
      | _ -> None)
    | Ast.Bin (Ast.Div, a, b) -> (
      match (go a, go b) with
      | Some x, Some y -> (
        match Linear.is_const y with
        | Some k when k <> 0 ->
          if
            x.Linear.const mod k = 0
            && List.for_all (fun (_, c) -> c mod k = 0) x.Linear.terms
          then
            Some
              {
                Linear.const = x.Linear.const / k;
                terms = List.map (fun (s, c) -> (s, c / k)) x.Linear.terms;
              }
          else None
        | _ -> None)
      | _ -> None)
    | Ast.Bin (Ast.Pow, a, b) -> (
      match (go a, go b) with
      | Some x, Some y -> (
        match (Linear.is_const x, Linear.is_const y) with
        | Some base, Some ex when ex >= 0 && ex < 31 ->
          Some (Linear.const (int_of_float (float_of_int base ** float_of_int ex)))
        | _ -> None)
      | _ -> None)
    | Ast.Bin ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne
               | Ast.And | Ast.Or), _, _)
    | Ast.Un (Ast.Not, _)
    | Ast.Real _ | Ast.Logic _ | Ast.Str _ | Ast.Index _ -> None
  in
  go e

let substitute ctx cfg reaching ?(depth = 8) sid (e : Ast.expr) : Ast.expr =
  let tbl = Defuse.table ctx in
  (* The defs of [w] visible at [at1] and [at2] coincide — then [w] has
     the same value at both points and may be moved across. *)
  let same_value w at1 at2 =
    let d1 = Reaching.defs_of_use reaching at1 w in
    let d2 = Reaching.defs_of_use reaching at2 w in
    List.length d1 = List.length d2
    && List.for_all2 (fun a b -> Reaching.def_compare a b = 0) d1 d2
  in
  let rec subst_expr d at e =
    if d = 0 then e
    else
      match e with
      | Ast.Var v -> subst_var d at v
      | Ast.Index (b, args) -> Ast.Index (b, List.map (subst_expr d at) args)
      | Ast.Bin (op, a, b) -> Ast.Bin (op, subst_expr d at a, subst_expr d at b)
      | Ast.Un (op, a) -> Ast.Un (op, subst_expr d at a)
      | Ast.Int _ | Ast.Real _ | Ast.Logic _ | Ast.Str _ -> e
  and subst_var d at v =
    let keep = Ast.Var v in
    match Symbol.lookup tbl v with
    | Some { kind = Symbol.Scalar; typ = Ast.Tinteger; _ } -> (
      match Reaching.unique_def reaching at v with
      | None -> keep
      | Some def_sid -> (
        match Cfg.stmt_of cfg (Cfg.Stmt def_sid) with
        | Some { Ast.node = Ast.Assign (Ast.Var v', rhs); _ }
          when String.equal v v' && not (List.mem v (Ast.expr_vars rhs)) ->
          let movable =
            List.for_all
              (fun w -> same_value w at def_sid)
              (Ast.expr_vars rhs)
          in
          if movable then subst_expr (d - 1) def_sid rhs else keep
        | Some _ | None -> keep))
    | Some _ | None -> keep
  in
  subst_expr depth sid e

let invariant_in ctx (loop : Ast.stmt) v =
  match loop.Ast.node with
  | Ast.Do (h, body) ->
    (not (String.equal h.Ast.dvar v))
    && not
         (Ast.fold_stmts
            (fun acc s -> acc || List.mem v (Defuse.may_defs ctx s))
            false body)
  | _ -> invalid_arg "Symbolic.invariant_in: not a loop"

let expr_invariant_in ctx loop e =
  List.for_all (invariant_in ctx loop) (Ast.expr_vars e)
