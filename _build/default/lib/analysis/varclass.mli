(** Per-loop variable classification — the analysis behind Ped's
    variable pane.

    For a DO loop, every scalar mentioned in the body is classified:

    - [Induction]: the loop's induction variable, or an auxiliary
      induction variable ([K = K + c] executed exactly once per
      iteration at the top level of the body).
    - [Reduction]: accumulated with a single commutative-associative
      operation ([S = S + e], [S = S * e], [S = MAX(S, e)],
      [S = MIN(S, e)]) and not otherwise referenced.  Recognizing
      these is the enhancement the Ped evaluation called for.
    - [Private]: written before read on every iteration path (scalar
      kill), so each iteration can get its own copy.
      [needs_last_value] is set when the scalar is live after the
      loop, in which case parallelization must copy out the final
      iteration's value.
    - [Shared_safe]: read-only in the loop.
    - [Shared_unsafe]: everything else — a loop-carried scalar
      dependence that blocks parallelization.

    Classification is conservative in the presence of unstructured
    control flow: a body containing GOTO/RETURN/STOP downgrades all
    written scalars to [Shared_unsafe]. *)

open Fortran_front

type reduction_op = Rsum | Rprod | Rmax | Rmin

type classification =
  | Induction of { stride : Symbolic.Linear.t option }
  | Reduction of reduction_op
  | Private of { needs_last_value : bool }
  | Shared_safe
  | Shared_unsafe

val pp_classification : Format.formatter -> classification -> unit
val classification_to_string : classification -> string

type t

(** [classify ?recognize_reductions ?cfg ctx liveness loop] — classify
    all scalars of [loop]'s body.  [recognize_reductions] defaults to
    [true]; pass [false] to reproduce original Ped behaviour (sum
    reductions left as shared, as the evaluation observed).  With
    [cfg], last-value liveness uses the precise loop-exit paths
    ({!Liveness.live_after}); without it, the conservative
    [is_live_out] of the DO statement. *)
val classify :
  ?recognize_reductions:bool -> ?cfg:Cfg.t -> Defuse.ctx -> Liveness.t ->
  Ast.stmt -> t

val lookup : t -> string -> classification option

(** All classified variables with their classes, sorted by name. *)
val all : t -> (string * classification) list

(** Scalars whose classification permits parallel execution of the
    loop (everything except [Shared_unsafe]). *)
val parallelizable : t -> bool

(** The variables blocking parallelization, i.e. the
    [Shared_unsafe] ones. *)
val blockers : t -> string list

(** Auxiliary induction variables with their per-iteration stride and
    the statement performing the increment. *)
val aux_inductions : Defuse.ctx -> Ast.stmt -> (string * int * Ast.stmt_id) list
