open Fortran_front

type def = { def_at : Cfg.node; def_var : string }

let def_compare a b =
  match Cfg.node_compare a.def_at b.def_at with
  | 0 -> String.compare a.def_var b.def_var
  | c -> c

module DefSet = Set.Make (struct
  type t = def

  let compare = def_compare
end)

type t = {
  ctx : Defuse.ctx;
  cfg : Cfg.t;
  result : DefSet.t Dataflow.result;
  iters : int;
}

let analyze (ctx : Defuse.ctx) (cfg : Cfg.t) : t =
  let all_vars =
    List.filter_map
      (fun (i : Symbol.info) ->
        match i.kind with
        | Symbol.Scalar | Symbol.Array _ -> Some i.name
        | Symbol.Routine | Symbol.External_fun | Symbol.Intrinsic -> None)
      (Symbol.infos (Defuse.table ctx))
  in
  let entry_defs =
    DefSet.of_list
      (List.map (fun v -> { def_at = Cfg.Entry; def_var = v }) all_vars)
  in
  let transfer node in_set =
    match node with
    | Cfg.Entry | Cfg.Exit -> in_set
    | Cfg.Stmt _ -> (
      match Cfg.stmt_of cfg node with
      | None -> in_set
      | Some s ->
        let kills = Defuse.must_defs ctx s in
        let survivors =
          if kills = [] then in_set
          else DefSet.filter (fun d -> not (List.mem d.def_var kills)) in_set
        in
        List.fold_left
          (fun acc v -> DefSet.add { def_at = node; def_var = v } acc)
          survivors (Defuse.may_defs ctx s))
  in
  let problem =
    {
      Dataflow.direction = Dataflow.Forward;
      boundary = entry_defs;
      init = DefSet.empty;
      join = DefSet.union;
      equal = DefSet.equal;
      transfer;
    }
  in
  let result = Dataflow.solve cfg problem in
  { ctx; cfg; result; iters = Dataflow.iterations result }

let reaching_in t node = DefSet.elements (Dataflow.input t.result node)

let defs_of_use t sid var =
  let node = Cfg.Stmt sid in
  let reaching = Dataflow.input t.result node in
  DefSet.elements
    (DefSet.filter (fun d -> String.equal d.def_var var) reaching)

let unique_def t sid var =
  match
    List.filter_map
      (fun d ->
        match d.def_at with Cfg.Stmt s -> Some s | Cfg.Entry | Cfg.Exit -> None)
      (defs_of_use t sid var)
  with
  | [ s ] ->
    (* only a unique def if no entry def also reaches *)
    if List.exists (fun d -> d.def_at = Cfg.Entry) (defs_of_use t sid var) then
      None
    else Some s
  | _ -> None

let chains t =
  List.concat_map
    (fun node ->
      match Cfg.stmt_of t.cfg node with
      | None -> []
      | Some s ->
        let uses = Defuse.uses t.ctx s in
        List.concat_map
          (fun v ->
            List.map (fun d -> (d, s.Ast.sid)) (defs_of_use t s.Ast.sid v))
          uses)
    (Cfg.nodes t.cfg)

let iterations t = t.iters
