(** Symbolic analysis: canonical linear forms and forward substitution.

    Dependence testing needs subscripts as affine functions of loop
    induction variables plus symbolic loop-invariant terms.  A
    {!Linear.t} is [c0 + Σ ci·symi] with integer coefficients over
    named symbols; identical symbolic terms cancel when two subscripts
    are subtracted, which is how Ped disproves dependences even when
    bounds like [N] are unknown.

    Forward substitution resolves the "subscript through a scalar
    temporary" idiom ([J1 = J + 1; A(J1) = ...]) by inlining unique
    reaching definitions, bounded in depth. *)

open Fortran_front

module Linear : sig
  type t = {
    const : int;
    terms : (string * int) list;  (** sorted by symbol, coefficients ≠ 0 *)
  }

  val const : int -> t
  val sym : string -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : int -> t -> t
  val equal : t -> t -> bool
  val is_const : t -> int option

  (** Coefficient of a symbol (0 if absent). *)
  val coeff : string -> t -> int

  (** Symbols with nonzero coefficients. *)
  val syms : t -> string list

  (** Remove a symbol's term, returning its coefficient and the rest. *)
  val split : string -> t -> int * t

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string

  (** Rebuild an AST expression (canonical term order). *)
  val to_expr : t -> Fortran_front.Ast.expr

  (** Evaluate under a full symbol assignment. *)
  val eval : (string -> int option) -> t -> int option
end

(** [linearize ~resolve e] converts [e] to a linear form.  [resolve v]
    may return a linear form to substitute for variable [v] (used for
    PARAMETER constants and induction-variable normalization); [None]
    keeps [v] as an atomic symbol.  Returns [None] when [e] is not
    affine (products of symbols, intrinsic calls, array references,
    real arithmetic...). *)
val linearize : resolve:(string -> Linear.t option) -> Ast.expr -> Linear.t option

(** [substitute ctx reaching ~depth sid e] forward-substitutes unique
    reaching scalar definitions into [e], as seen at statement [sid].
    Self-referential definitions ([K = K + 1]) are left alone.  [depth]
    bounds the recursion (default 8). *)
val substitute :
  Defuse.ctx -> Cfg.t -> Reaching.t -> ?depth:int -> Ast.stmt_id -> Ast.expr
  -> Ast.expr

(** [invariant_in ctx loop v] — no statement of [loop]'s body (header
    included) may define [v]. *)
val invariant_in : Defuse.ctx -> Ast.stmt -> string -> bool

(** [expr_invariant_in ctx loop e] — every variable of [e] is
    invariant in [loop]. *)
val expr_invariant_in : Defuse.ctx -> Ast.stmt -> Ast.expr -> bool
