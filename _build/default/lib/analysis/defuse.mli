(** Per-statement definition and use sets.

    Shared by reaching definitions, liveness, constant propagation and
    scalar-kill analysis.  Array assignments are "weak" definitions:
    they define the array name but never kill previous definitions.

    CALL statements are handled through an optional {!call_oracle}
    provided by interprocedural analysis (Mod/Ref); without one, a
    call conservatively may-defines and uses every actual-argument
    variable and every COMMON variable of the unit — exactly the
    assumption Ped falls back on when interprocedural analysis is
    unavailable.  External function calls appearing inside expressions
    are assumed side-effect free (Fortran 77 programs that Ped targets
    obey this; the interpreter enforces it). *)

open Fortran_front

(** Interprocedural summary of one CALL statement, in the caller's
    name space. *)
type call_effects = {
  ce_mods : string list;   (** variables the callee may modify *)
  ce_refs : string list;   (** variables the callee may read *)
  ce_kills : string list;  (** scalars the callee defines on every path
                               before any use (interprocedural Kill) *)
}

(** Given a CALL statement, returns its effects, or [None] for "no
    information" (be conservative). *)
type call_oracle = Ast.stmt -> call_effects option

type ctx

(** [make ?oracle table unit] prepares the context used by the
    per-statement queries. *)
val make : ?oracle:call_oracle -> Symbol.table -> Ast.program_unit -> ctx

val table : ctx -> Symbol.table

(** Names possibly defined by the statement itself (not by nested
    statements): assignment lhs, DO induction variable, CALL effects. *)
val may_defs : ctx -> Ast.stmt -> string list

(** Scalar names definitely (strongly) defined — kills previous defs:
    only [Assign (Var v, _)] and the DO induction variable qualify. *)
val must_defs : ctx -> Ast.stmt -> string list

(** Names possibly read by the statement itself: rhs variables,
    subscripts on the lhs, conditions, bounds, call uses. *)
val uses : ctx -> Ast.stmt -> string list

(** [array_writes ctx s] / [array_reads ctx s] — array references
    (name, subscript list) written/read by the statement itself.
    Used by dependence analysis to enumerate reference pairs. *)
val array_writes : ctx -> Ast.stmt -> (string * Ast.expr list) list

val array_reads : ctx -> Ast.stmt -> (string * Ast.expr list) list

(** Scalars written / read by the statement (excludes arrays). *)
val scalar_writes : ctx -> Ast.stmt -> string list

val scalar_reads : ctx -> Ast.stmt -> string list

(** The (oracle-supplied or conservative) effects of a CALL statement;
    empty effects for any other statement. *)
val effects_of_call : ctx -> Ast.stmt -> call_effects
