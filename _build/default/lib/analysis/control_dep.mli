(** Control dependences (Ferrante–Ottenstein–Warren construction).

    Statement [y] is control dependent on [x] when [x] has a successor
    from which [y] is always reached (y postdominates it) but [y] does
    not postdominate [x] itself — i.e. [x]'s branch decides whether
    [y] executes.  Ped shows these in the dependence pane alongside
    data dependences and uses them when checking transformation
    safety for conditionals. *)

open Fortran_front

type edge = {
  branch : Ast.stmt_id;     (** the deciding statement (an IF or DO) *)
  dependent : Ast.stmt_id;  (** the statement whose execution it controls *)
}

val compute : Cfg.t -> edge list

(** Statements controlling [sid]. *)
val controllers : edge list -> Ast.stmt_id -> Ast.stmt_id list

(** Statements controlled by [sid]. *)
val controlled_by : edge list -> Ast.stmt_id -> Ast.stmt_id list
