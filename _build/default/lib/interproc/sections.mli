(** Bounded regular section analysis of array side effects.

    For every unit and every externally visible array (formal or
    COMMON), summarize which part of the array the unit may write and
    read.  Each dimension is a point (an expression over formals,
    COMMON variables and constants), a bounded range, or unknown.

    At a call site the summary translates into caller-space
    {e pseudo-references} that participate in ordinary dependence
    testing — so [DO I ... CALL ROW(A, I)] where ROW writes only row
    [I] parallelizes, the six-program "sections" win from the Ped
    evaluation. *)

open Fortran_front

type sec1 =
  | Point of Ast.expr          (** exactly this subscript *)
  | Range of Ast.expr * Ast.expr  (** between these, inclusive *)
  | Star                       (** anything *)

type section = sec1 list       (** one entry per dimension *)

type access = { sec_w : section option; sec_r : section option }
(** [None] — the unit does not touch the array in that mode. *)

type t

val compute : Callgraph.t -> t

(** Per-array accesses of a unit (callee name space). *)
val summary_of : t -> string -> (string * access) list

(** [call_refs t ~site ~tbl] — the callee's array effects translated
    to caller space as pseudo-references: [(array, subscripts option,
    is_write)]; [None] subscripts mean the whole array.  Complete: an
    array the callee may touch always appears, degraded to whole-array
    when sections cannot describe it. *)
val call_refs :
  t ->
  site:Callgraph.site ->
  tbl:Symbol.table ->
  (string * Ast.expr list option * bool) list
