(** Interprocedural constant propagation.

    A formal parameter is an interprocedural constant when every call
    site passes it the same compile-time constant value (evaluated
    with the caller's PARAMETER constants and the caller's own
    interprocedural constants — computed to a fixed point).  The
    constants feed the callee's dependence analysis as asserted
    values, inheriting "from a procedure's callers" exactly as Ped's
    framework does. *)

type t

val compute : Callgraph.t -> t

(** Formal-parameter constants of a unit: [(formal, value)]. *)
val constants_of : t -> string -> (string * int) list
