(** Flow-insensitive interprocedural side-effect analysis (Mod/Ref).

    For every program unit: which of its formal parameters and COMMON
    variables may be modified, and which may be referenced, on some
    path through the unit — including effects of the calls it makes
    (computed to a fixed point over the call graph).

    The Ped evaluation found this analysis indispensable: without it,
    a loop containing a CALL conservatively modifies every actual and
    every COMMON variable, and almost never parallelizes. *)

open Fortran_front

module SSet : Set.S with type elt = string

type summary = { mods : SSet.t; refs : SSet.t }
(** Names are in the unit's own name space (formal names and COMMON
    variable names). *)

type t

val compute : Callgraph.t -> t

(** Summary of a unit; [None] for external routines (assume worst). *)
val summary_of : t -> string -> summary option

(** [translate t ~site ~tbl] — the effect of one call site in the
    caller's name space: [(mods, refs)].  [tbl] is the caller's symbol
    table (to decide which actuals are modifiable).  Unknown callees
    translate to "modifies and reads every modifiable actual and every
    COMMON variable of the caller". *)
val translate :
  t -> site:Callgraph.site -> tbl:Symbol.table -> string list * string list
