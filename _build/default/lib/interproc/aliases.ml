open Fortran_front

(* alias kind: [`Aligned] — both names denote the same storage starting
   at the same element (whole-array actuals), so subscripts compare
   directly; [`May] — overlapping storage with unknown offset (an
   array-element actual): nothing can be compared. *)

module PM = Map.Make (struct
  type t = string * string

  let compare = compare
end)

type kind = Aligned | May

type t = { pairs : (string, kind PM.t) Hashtbl.t }

let norm (a, b) = if String.compare a b <= 0 then (a, b) else (b, a)

let weaker a b = match (a, b) with Aligned, Aligned -> Aligned | _ -> May

let compute (cg : Callgraph.t) : t =
  let pairs : (string, kind PM.t) Hashtbl.t = Hashtbl.create 8 in
  let get u = Option.value ~default:PM.empty (Hashtbl.find_opt pairs u) in
  let tables = Hashtbl.create 8 in
  let table u =
    match Hashtbl.find_opt tables u with
    | Some t -> t
    | None -> (
      match Callgraph.unit_named cg u with
      | Some unit_ ->
        let t = Symbol.build unit_ in
        Hashtbl.replace tables u t;
        t
      | None ->
        Symbol.build
          { Ast.uname = u; kind = Ast.Subroutine []; decls = [];
            implicit_none = false; implicits = []; body = [] })
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    List.iter
      (fun (site : Callgraph.site) ->
        match Callgraph.formals_of cg site.Callgraph.callee with
        | None -> ()
        | Some formals ->
          let caller_pairs = get site.Callgraph.caller in
          let caller_tbl = table site.Callgraph.caller in
          (* (formal, base variable, whole-array?) per actual position *)
          let actuals =
            List.mapi
              (fun i a ->
                let f = List.nth_opt formals i in
                match (a : Ast.expr) with
                | Ast.Var v -> (f, Some v, true)
                | Ast.Index (b, _)
                  when not (Symbol.is_fun_call caller_tbl b) ->
                  (f, Some b, false)
                | _ -> (f, None, false))
              site.Callgraph.actuals
          in
          let add p k =
            let u = site.Callgraph.callee in
            let cur = get u in
            let p = norm p in
            let k =
              match PM.find_opt p cur with
              | Some old -> weaker old k
              | None -> k
            in
            if PM.find_opt p cur <> Some k then begin
              Hashtbl.replace pairs u (PM.add p k cur);
              changed := true
            end
          in
          List.iteri
            (fun i (fi, bi, wi) ->
              List.iteri
                (fun j (fj, bj, wj) ->
                  if i < j then
                    match (fi, bi, fj, bj) with
                    | Some fi, Some bi, Some fj, Some bj ->
                      (* same base passed twice *)
                      if String.equal bi bj then
                        add (fi, fj) (if wi && wj then Aligned else May);
                      (* actuals already aliased in the caller *)
                      (match PM.find_opt (norm (bi, bj)) caller_pairs with
                      | Some k ->
                        add (fi, fj)
                          (if wi && wj then k else May)
                      | None -> ())
                    | _ -> ())
                actuals)
            actuals;
          (* a COMMON variable passed as an actual aliases the formal
             when the callee sees the same COMMON name *)
          List.iter
            (fun (f, b, whole) ->
              match (f, b) with
              | Some f, Some b ->
                if
                  Symbol.is_common caller_tbl b
                  && Symbol.is_common (table site.Callgraph.callee) b
                then add (f, b) (if whole then Aligned else May)
              | _ -> ())
            actuals)
      (Callgraph.sites cg)
  done;
  { pairs }

let pairs_of t u =
  PM.bindings (Option.value ~default:PM.empty (Hashtbl.find_opt t.pairs u))
  |> List.map (fun ((a, b), k) -> (a, b, k))

let query t u a b =
  match
    PM.find_opt (norm (a, b))
      (Option.value ~default:PM.empty (Hashtbl.find_opt t.pairs u))
  with
  | Some Aligned -> `Aligned
  | Some May -> `May
  | None -> `No
