open Fortran_front
open Scalar_analysis
module SSet = Set.Make (String)

type t = {
  cg : Callgraph.t;
  kills : (string, SSet.t) Hashtbl.t;
}

(* Must-defined-so-far forward analysis over the unit CFG.  The
   lattice is sets of variable names under intersection; [None]
   represents "unvisited" (top). *)
let unit_kills (cg : Callgraph.t) (kills : (string, SSet.t) Hashtbl.t)
    (u : Ast.program_unit) : SSet.t =
  let tbl = Symbol.build u in
  let oracle (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Call (callee, actuals) -> (
      match (Hashtbl.find_opt kills callee, Callgraph.formals_of cg callee) with
      | Some callee_kills, Some formals ->
        let killed_actuals =
          SSet.fold
            (fun name acc ->
              match List.find_index (String.equal name) formals with
              | Some i -> (
                match List.nth_opt actuals i with
                | Some (Ast.Var v) -> v :: acc
                | _ -> acc)
              | None -> name :: acc (* COMMON scalar *))
            callee_kills []
        in
        Some
          {
            Defuse.ce_mods =
              (let base =
                 List.filter_map
                   (function
                     | Ast.Var v -> Some v
                     | Ast.Index (b, _) when not (Symbol.is_fun_call tbl b) ->
                       Some b
                     | _ -> None)
                   actuals
               in
               base
               @ List.filter_map
                   (fun (i : Symbol.info) ->
                     if i.common <> None then Some i.name else None)
                   (Symbol.infos tbl));
            ce_refs = List.concat_map Ast.expr_vars actuals;
            ce_kills = killed_actuals;
          }
      | _ -> None)
    | _ -> None
  in
  let ctx = Defuse.make ~oracle tbl u in
  let cfg = Cfg.build u in
  let transfer node (md : SSet.t option) =
    match md with
    | None -> None
    | Some md -> (
      match Cfg.stmt_of cfg node with
      | None -> Some md
      | Some s -> Some (SSet.union md (SSet.of_list (Defuse.must_defs ctx s))))
  in
  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some x, Some y -> Some (SSet.inter x y)
  in
  let problem =
    {
      Dataflow.direction = Dataflow.Forward;
      boundary = Some SSet.empty;
      init = None;
      join;
      equal = (fun a b ->
        match (a, b) with
        | None, None -> true
        | Some x, Some y -> SSet.equal x y
        | _ -> false);
      transfer;
    }
  in
  let result = Dataflow.solve cfg problem in
  (* upward-exposed uses: a use not preceded by a must-def on some path *)
  let upward_exposed =
    List.fold_left
      (fun acc node ->
        match Cfg.stmt_of cfg node with
        | None -> acc
        | Some s ->
          let md =
            match Dataflow.input result node with
            | Some md -> md
            | None -> SSet.empty
          in
          List.fold_left
            (fun acc v -> if SSet.mem v md then acc else SSet.add v acc)
            acc (Defuse.uses ctx s))
      SSet.empty (Cfg.nodes cfg)
  in
  let md_exit =
    match Dataflow.input result Cfg.Exit with
    | Some md -> md
    | None -> SSet.empty
  in
  let candidate v =
    match Symbol.lookup tbl v with
    | Some ({ kind = Symbol.Scalar; _ } as i) -> i.formal || i.common <> None
    | _ -> false
  in
  SSet.filter
    (fun v -> candidate v && not (SSet.mem v upward_exposed))
    md_exit

let compute (cg : Callgraph.t) (_modref : Modref.t) : t =
  let kills = Hashtbl.create 16 in
  let units = Callgraph.bottom_up cg in
  (* two bottom-up passes reach a fixed point for acyclic call graphs;
     iterate until stable to be safe *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    List.iter
      (fun name ->
        match Callgraph.unit_named cg name with
        | None -> ()
        | Some u ->
          let k = unit_kills cg kills u in
          let old = Option.value ~default:SSet.empty (Hashtbl.find_opt kills name) in
          if not (SSet.equal k old) then begin
            Hashtbl.replace kills name k;
            changed := true
          end)
      units
  done;
  { cg; kills }

let kills_of t name =
  match Hashtbl.find_opt t.kills name with
  | Some s -> SSet.elements s
  | None -> []

let translate t ~(site : Callgraph.site) ~tbl =
  ignore tbl;
  match
    (Hashtbl.find_opt t.kills site.Callgraph.callee,
     Callgraph.formals_of t.cg site.Callgraph.callee)
  with
  | Some callee_kills, Some formals ->
    SSet.fold
      (fun name acc ->
        match List.find_index (String.equal name) formals with
        | Some i -> (
          match List.nth_opt site.Callgraph.actuals i with
          | Some (Ast.Var v) -> v :: acc
          | _ -> acc)
        | None -> name :: acc)
      callee_kills []
    |> List.sort_uniq String.compare
  | _ -> []
