open Fortran_front
open Scalar_analysis
module SSet = Set.Make (String)

type summary = { mods : SSet.t; refs : SSet.t }

type t = {
  cg : Callgraph.t;
  summaries : (string, summary) Hashtbl.t;
  tables : (string, Symbol.table) Hashtbl.t;
}

let visible tbl name =
  (* only formals and COMMON variables are externally visible *)
  match Symbol.lookup tbl name with
  | Some (i : Symbol.info) -> i.formal || i.common <> None
  | None -> false

(* Local may-mod / may-ref of a unit, ignoring calls. *)
let local_effects tbl (u : Ast.program_unit) : summary =
  let ctx = Defuse.make tbl u in
  Ast.fold_stmts
    (fun acc (s : Ast.stmt) ->
      match s.Ast.node with
      | Ast.Call _ -> acc (* handled by propagation *)
      | _ ->
        let mods = List.filter (visible tbl) (Defuse.may_defs ctx s) in
        let refs = List.filter (visible tbl) (Defuse.uses ctx s) in
        {
          mods = SSet.union acc.mods (SSet.of_list mods);
          refs = SSet.union acc.refs (SSet.of_list refs);
        })
    { mods = SSet.empty; refs = SSet.empty }
    u.Ast.body

(* Base of a modifiable actual argument, if any. *)
let actual_base tbl (e : Ast.expr) : string option =
  match e with
  | Ast.Var v -> Some v
  | Ast.Index (b, _) when not (Symbol.is_fun_call tbl b) -> Some b
  | _ -> None

let vars_of_actual (e : Ast.expr) : string list = Ast.expr_vars e

(* Translate a callee-name-space set through a call site. *)
let translate_set (names : SSet.t) ~(formals : string list)
    ~(actuals : Ast.expr list) ~tbl ~for_mods : string list =
  SSet.fold
    (fun name acc ->
      match List.find_index (String.equal name) formals with
      | Some i -> (
        match List.nth_opt actuals i with
        | Some actual ->
          if for_mods then
            match actual_base tbl actual with
            | Some b -> b :: acc
            | None -> acc (* expression argument: a temporary *)
          else vars_of_actual actual @ acc
        | None -> acc)
      | None ->
        (* a COMMON variable: visible in the caller under its own name *)
        name :: acc)
    names []

let compute (cg : Callgraph.t) : t =
  let summaries = Hashtbl.create 16 in
  let tables = Hashtbl.create 16 in
  let units =
    List.filter_map (Callgraph.unit_named cg) (Callgraph.unit_names cg)
  in
  List.iter
    (fun (u : Ast.program_unit) ->
      let tbl = Symbol.build u in
      Hashtbl.replace tables u.Ast.uname tbl;
      Hashtbl.replace summaries u.Ast.uname (local_effects tbl u))
    units;
  (* propagate call effects to a fixed point *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (site : Callgraph.site) ->
        match
          ( Hashtbl.find_opt summaries site.Callgraph.caller,
            Hashtbl.find_opt tables site.Callgraph.caller )
        with
        | Some caller_sum, Some caller_tbl ->
          let effect_mods, effect_refs =
            match
              ( Hashtbl.find_opt summaries site.Callgraph.callee,
                Callgraph.formals_of cg site.Callgraph.callee )
            with
            | Some callee_sum, Some formals ->
              ( translate_set callee_sum.mods ~formals
                  ~actuals:site.Callgraph.actuals ~tbl:caller_tbl
                  ~for_mods:true,
                translate_set callee_sum.refs ~formals
                  ~actuals:site.Callgraph.actuals ~tbl:caller_tbl
                  ~for_mods:false )
            | _ ->
              (* external callee: worst case *)
              let bases =
                List.filter_map (actual_base caller_tbl) site.Callgraph.actuals
              in
              let commons =
                List.filter_map
                  (fun (i : Symbol.info) ->
                    if i.common <> None then Some i.name else None)
                  (Symbol.infos caller_tbl)
              in
              ( bases @ commons,
                List.concat_map vars_of_actual site.Callgraph.actuals @ commons
              )
          in
          let add_visible set names =
            List.fold_left
              (fun s n -> if visible caller_tbl n then SSet.add n s else s)
              set names
          in
          let next =
            {
              mods = add_visible caller_sum.mods effect_mods;
              refs = add_visible caller_sum.refs effect_refs;
            }
          in
          if
            not
              (SSet.equal next.mods caller_sum.mods
              && SSet.equal next.refs caller_sum.refs)
          then begin
            Hashtbl.replace summaries site.Callgraph.caller next;
            changed := true
          end
        | _ -> ())
      (Callgraph.sites cg)
  done;
  { cg; summaries; tables }

let summary_of t name = Hashtbl.find_opt t.summaries name

let translate t ~(site : Callgraph.site) ~tbl =
  match
    (summary_of t site.Callgraph.callee, Callgraph.formals_of t.cg site.Callgraph.callee)
  with
  | Some callee_sum, Some formals ->
    let mods =
      translate_set callee_sum.mods ~formals ~actuals:site.Callgraph.actuals
        ~tbl ~for_mods:true
    in
    let refs =
      translate_set callee_sum.refs ~formals ~actuals:site.Callgraph.actuals
        ~tbl ~for_mods:false
    in
    (List.sort_uniq String.compare mods, List.sort_uniq String.compare refs)
  | _ ->
    let bases = List.filter_map (actual_base tbl) site.Callgraph.actuals in
    let commons =
      List.filter_map
        (fun (i : Symbol.info) -> if i.common <> None then Some i.name else None)
        (Symbol.infos tbl)
    in
    ( List.sort_uniq String.compare (bases @ commons),
      List.sort_uniq String.compare
        (List.concat_map vars_of_actual site.Callgraph.actuals @ commons) )
