open Fortran_front
open Scalar_analysis

type t = { consts : (string, (string * int) list) Hashtbl.t }

(* Evaluate an actual argument using the caller's PARAMETER constants
   and its already-known interprocedural formal constants. *)
let eval_actual tbl caller_consts (e : Ast.expr) : int option =
  let lookup v =
    match List.assoc_opt v caller_consts with
    | Some n -> Some (Constants.Cint n)
    | None -> (
      match Symbol.param_value tbl v with
      | Some n -> Some (Constants.Cint n)
      | None -> None)
  in
  match Constants.eval_with lookup e with
  | Some (Constants.Cint n) -> Some n
  | _ -> None

let compute (cg : Callgraph.t) : t =
  let consts : (string, (string * int) list) Hashtbl.t = Hashtbl.create 16 in
  let tables = Hashtbl.create 16 in
  List.iter
    (fun name ->
      match Callgraph.unit_named cg name with
      | Some u -> Hashtbl.replace tables name (Symbol.build u)
      | None -> ())
    (Callgraph.unit_names cg);
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    List.iter
      (fun callee ->
        match Callgraph.formals_of cg callee with
        | None | Some [] -> ()
        | Some formals ->
          let sites = Callgraph.sites_to cg callee in
          if sites <> [] then begin
            (* a formal is constant iff all sites agree on a value *)
            let per_formal =
              List.mapi
                (fun i f ->
                  let vals =
                    List.map
                      (fun (site : Callgraph.site) ->
                        match
                          (Hashtbl.find_opt tables site.Callgraph.caller,
                           List.nth_opt site.Callgraph.actuals i)
                        with
                        | Some tbl, Some a ->
                          let caller_consts =
                            Option.value ~default:[]
                              (Hashtbl.find_opt consts site.Callgraph.caller)
                          in
                          eval_actual tbl caller_consts a
                        | _ -> None)
                      sites
                  in
                  match vals with
                  | Some v :: rest
                    when List.for_all (fun x -> x = Some v) rest ->
                    Some (f, v)
                  | _ -> None)
                formals
              |> List.filter_map Fun.id
            in
            let old = Option.value ~default:[] (Hashtbl.find_opt consts callee) in
            if per_formal <> old then begin
              Hashtbl.replace consts callee per_formal;
              changed := true
            end
          end)
      (Callgraph.unit_names cg)
  done;
  { consts }

let constants_of t name =
  Option.value ~default:[] (Hashtbl.find_opt t.consts name)
