open Fortran_front
open Scalar_analysis

type t = {
  cg : Callgraph.t;
  modref_ : Modref.t;
  kills_ : Ipkill.t;
  sections_ : Sections.t;
  ipconst_ : Ipconst.t;
  aliases_ : Aliases.t;
}

let analyze (prog : Ast.program) : t =
  let cg = Callgraph.build prog in
  let modref_ = Modref.compute cg in
  let kills_ = Ipkill.compute cg modref_ in
  let sections_ = Sections.compute cg in
  let ipconst_ = Ipconst.compute cg in
  let aliases_ = Aliases.compute cg in
  { cg; modref_; kills_; sections_; ipconst_; aliases_ }

let callgraph t = t.cg
let modref t = t.modref_
let kills t = t.kills_
let sections t = t.sections_
let ipconst t = t.ipconst_
let aliases t = t.aliases_

let site_of (u : Ast.program_unit) (s : Ast.stmt) : Callgraph.site option =
  match s.Ast.node with
  | Ast.Call (callee, actuals) ->
    Some
      { Callgraph.caller = u.Ast.uname; callee; call_sid = s.Ast.sid; actuals }
  | _ -> None

let oracle_for t (u : Ast.program_unit) : Defuse.call_oracle =
  let tbl = Symbol.build u in
  fun s ->
    match site_of u s with
    | None -> None
    | Some site ->
      let mods, refs = Modref.translate t.modref_ ~site ~tbl in
      let kills = Ipkill.translate t.kills_ ~site ~tbl in
      Some { Defuse.ce_mods = mods; ce_refs = refs; ce_kills = kills }

let call_refs_for t (u : Ast.program_unit) : Dependence.Depenv.call_refs =
  let tbl = Symbol.build u in
  fun s ->
    match site_of u s with
    | None -> []
    | Some site -> Sections.call_refs t.sections_ ~site ~tbl

let env_for ?config ?(asserts = Dependence.Depenv.no_assertions) t
    (u : Ast.program_unit) : Dependence.Depenv.t =
  let asserts =
    {
      asserts with
      Dependence.Depenv.asserted_values =
        asserts.Dependence.Depenv.asserted_values
        @ Ipconst.constants_of t.ipconst_ u.Ast.uname;
    }
  in
  Dependence.Depenv.make ~oracle:(oracle_for t u)
    ~call_refs:(call_refs_for t u)
    ~alias:(fun a b ->
      if String.equal a b then `Aligned
      else Aliases.query t.aliases_ u.Ast.uname a b)
    ?config ~asserts u
