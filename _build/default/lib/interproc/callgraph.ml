open Fortran_front

type site = {
  caller : string;
  callee : string;
  call_sid : Ast.stmt_id;
  actuals : Ast.expr list;
}

type t = {
  prog : Ast.program;
  by_name : (string, Ast.program_unit) Hashtbl.t;
  all_sites : site list;
}

let build (prog : Ast.program) : t =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (u : Ast.program_unit) -> Hashtbl.replace by_name u.Ast.uname u)
    prog.Ast.punits;
  let all_sites =
    List.concat_map
      (fun (u : Ast.program_unit) ->
        List.rev
          (Ast.fold_stmts
             (fun acc (s : Ast.stmt) ->
               match s.Ast.node with
               | Ast.Call (callee, actuals) ->
                 { caller = u.Ast.uname; callee; call_sid = s.Ast.sid; actuals }
                 :: acc
               | _ -> acc)
             [] u.Ast.body))
      prog.Ast.punits
  in
  { prog; by_name; all_sites }

let program t = t.prog
let unit_named t name = Hashtbl.find_opt t.by_name name
let unit_names t = List.map (fun (u : Ast.program_unit) -> u.Ast.uname) t.prog.Ast.punits
let sites t = t.all_sites
let sites_in t name = List.filter (fun s -> String.equal s.caller name) t.all_sites
let sites_to t name = List.filter (fun s -> String.equal s.callee name) t.all_sites

let callees_of t name =
  sites_in t name |> List.map (fun s -> s.callee) |> List.sort_uniq String.compare

let callers_of t name =
  sites_to t name |> List.map (fun s -> s.caller) |> List.sort_uniq String.compare

let bottom_up t =
  (* postorder DFS over the call graph from every unit *)
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      List.iter dfs (callees_of t name);
      if Hashtbl.mem t.by_name name then order := name :: !order
    end
  in
  List.iter dfs (unit_names t);
  List.rev !order

let formals_of t name =
  match unit_named t name with
  | Some u -> (
    match u.Ast.kind with
    | Ast.Main -> Some []
    | Ast.Subroutine fs | Ast.Function (_, fs) -> Some fs)
  | None -> None

let dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph callgraph {\n";
  List.iter
    (fun name -> Buffer.add_string buf (Printf.sprintf "  %S;\n" name))
    (unit_names t);
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "  %S -> %S;\n" s.caller s.callee))
    t.all_sites;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
