(** Formal-parameter alias analysis (Banning-style, flow insensitive).

    Two formals of a unit may alias when some call chain passes them
    overlapping storage — the classic case is [CALL S(A, A)].  A unit
    analyzed without this information can wrongly prove independence
    between references to what is actually one array.

    Aliases carry a kind: {e aligned} when both names denote the same
    storage from the same first element (whole-array actuals), so
    subscripts compare element for element; {e may} when the overlap
    has an unknown offset (an array-element actual like [A(5)]), where
    nothing about the subscripts can be compared. *)

type t

type kind = Aligned | May

val compute : Callgraph.t -> t

(** Alias pairs among a unit's formals/COMMON names. *)
val pairs_of : t -> string -> (string * string * kind) list

(** [query t unit a b] — the alias relation between two names. *)
val query : t -> string -> string -> string -> [ `Aligned | `May | `No ]
