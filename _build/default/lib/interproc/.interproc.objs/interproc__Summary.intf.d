lib/interproc/summary.mli: Aliases Ast Callgraph Dependence Fortran_front Ipconst Ipkill Modref Scalar_analysis Sections
