lib/interproc/summary.ml: Aliases Ast Callgraph Defuse Dependence Fortran_front Ipconst Ipkill Modref Scalar_analysis Sections String Symbol
