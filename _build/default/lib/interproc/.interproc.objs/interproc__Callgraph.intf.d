lib/interproc/callgraph.mli: Ast Fortran_front
