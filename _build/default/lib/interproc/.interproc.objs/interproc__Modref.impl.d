lib/interproc/modref.ml: Ast Callgraph Defuse Fortran_front Hashtbl List Scalar_analysis Set String Symbol
