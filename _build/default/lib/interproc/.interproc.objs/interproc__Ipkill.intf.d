lib/interproc/ipkill.mli: Callgraph Fortran_front Modref Symbol
