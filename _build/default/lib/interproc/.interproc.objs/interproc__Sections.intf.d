lib/interproc/sections.mli: Ast Callgraph Fortran_front Symbol
