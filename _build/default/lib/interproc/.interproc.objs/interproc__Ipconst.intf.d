lib/interproc/ipconst.mli: Callgraph
