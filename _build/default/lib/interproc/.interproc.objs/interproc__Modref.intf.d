lib/interproc/modref.mli: Callgraph Fortran_front Set Symbol
