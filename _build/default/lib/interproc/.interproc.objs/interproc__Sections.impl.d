lib/interproc/sections.ml: Ast Callgraph Defuse Dependence Fortran_front Hashtbl List Option Scalar_analysis String Symbol Symbolic
