lib/interproc/ipkill.ml: Ast Callgraph Cfg Dataflow Defuse Fortran_front Hashtbl List Modref Option Scalar_analysis Set String Symbol
