lib/interproc/aliases.ml: Ast Callgraph Fortran_front Hashtbl List Map Option String Symbol
