lib/interproc/callgraph.ml: Ast Buffer Fortran_front Hashtbl List Printf String
