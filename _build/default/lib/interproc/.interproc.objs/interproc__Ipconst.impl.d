lib/interproc/ipconst.ml: Ast Callgraph Constants Fortran_front Fun Hashtbl List Option Scalar_analysis Symbol
