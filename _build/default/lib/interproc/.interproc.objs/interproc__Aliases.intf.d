lib/interproc/aliases.mli: Callgraph
