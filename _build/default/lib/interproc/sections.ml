open Fortran_front
open Scalar_analysis

type sec1 = Point of Ast.expr | Range of Ast.expr * Ast.expr | Star

type section = sec1 list

type access = { sec_w : section option; sec_r : section option }

type t = {
  cg : Callgraph.t;
  summaries : (string, (string * access) list) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Section lattice                                                     *)
(* ------------------------------------------------------------------ *)

let const_of (e : Ast.expr) = match e with Ast.Int n -> Some n | _ -> None

let merge1 (a : sec1) (b : sec1) : sec1 =
  let hull lo1 hi1 lo2 hi2 =
    match (const_of lo1, const_of hi1, const_of lo2, const_of hi2) with
    | Some l1, Some h1, Some l2, Some h2 ->
      Range (Ast.Int (min l1 l2), Ast.Int (max h1 h2))
    | _ ->
      if Ast.expr_equal lo1 lo2 && Ast.expr_equal hi1 hi2 then Range (lo1, hi1)
      else Star
  in
  match (a, b) with
  | Star, _ | _, Star -> Star
  | Point x, Point y ->
    if Ast.expr_equal x y then Point x else hull x x y y
  | Point x, Range (lo, hi) | Range (lo, hi), Point x -> hull x x lo hi
  | Range (l1, h1), Range (l2, h2) -> hull l1 h1 l2 h2

let merge_section (a : section) (b : section) : section =
  if List.length a <> List.length b then
    List.map (fun _ -> Star) (if List.length a > List.length b then a else b)
  else List.map2 merge1 a b

let merge_access (a : access) (b : access) : access =
  let m x y =
    match (x, y) with
    | None, z | z, None -> z
    | Some s1, Some s2 -> Some (merge_section s1 s2)
  in
  { sec_w = m a.sec_w b.sec_w; sec_r = m a.sec_r b.sec_r }

let add_access table array acc =
  let cur =
    Option.value ~default:{ sec_w = None; sec_r = None }
      (Hashtbl.find_opt table array)
  in
  Hashtbl.replace table array (merge_access cur acc)

(* ------------------------------------------------------------------ *)
(* Converting a subscript to a section dimension                       *)
(* ------------------------------------------------------------------ *)

(* [allowed] decides whether a variable may appear in a summary
   expression (formals, COMMON, parameters). *)
let rec expr_allowed allowed (e : Ast.expr) =
  match e with
  | Ast.Var v -> allowed v
  | Ast.Int _ | Ast.Real _ | Ast.Logic _ | Ast.Str _ -> true
  | Ast.Index _ -> false
  | Ast.Bin (_, a, b) -> expr_allowed allowed a && expr_allowed allowed b
  | Ast.Un (_, a) -> expr_allowed allowed a

(* Widen a subscript over the enclosing loops: substitute each loop's
   induction variable by its bounds (monotonicity decided by the
   linear coefficient).  Returns a section dimension. *)
let dim_of_subscript ~allowed ~(loops : Dependence.Loopnest.loop list) (e : Ast.expr) :
    sec1 =
  let rec widen e loops =
    match loops with
    | [] ->
      if expr_allowed allowed e then `Pt e else `Star
    | (lp : Dependence.Loopnest.loop) :: rest -> (
      let iv = lp.Dependence.Loopnest.header.Ast.dvar in
      if not (List.mem iv (Ast.expr_vars e)) then widen e rest
      else
        let lo = lp.Dependence.Loopnest.header.Ast.lo
        and hi = lp.Dependence.Loopnest.header.Ast.hi in
        let step_ok =
          match lp.Dependence.Loopnest.header.Ast.step with
          | None -> true
          | Some (Ast.Int n) -> n <> 0
          | Some _ -> false
        in
        let coeff =
          Symbolic.linearize
            ~resolve:(fun v ->
              if String.equal v iv then None else Some (Symbolic.Linear.sym v))
            e
          |> Option.map (Symbolic.Linear.coeff iv)
        in
        match (coeff, step_ok) with
        | Some c, true when c <> 0 ->
          let e_lo = Ast.simplify (Ast.subst_var iv lo e) in
          let e_hi = Ast.simplify (Ast.subst_var iv hi e) in
          let e_lo, e_hi = if c > 0 then (e_lo, e_hi) else (e_hi, e_lo) in
          (match (widen e_lo rest, widen e_hi rest) with
          | `Pt a, `Pt b -> `Rg (a, b)
          | `Rg (a, _), `Rg (_, b) -> `Rg (a, b)
          | `Pt a, `Rg (_, b) | `Rg (a, _), `Pt b -> `Rg (a, b)
          | _ -> `Star)
        | _ -> `Star)
  in
  match widen e loops with
  | `Pt e -> Point e
  | `Rg (a, b) -> if Ast.expr_equal a b then Point a else Range (a, b)
  | `Star -> Star

(* ------------------------------------------------------------------ *)
(* Call-site translation                                               *)
(* ------------------------------------------------------------------ *)

let subst_formals (formals : string list) (actuals : Ast.expr list) e =
  let rec go e fs acts =
    match (fs, acts) with
    | f :: fs, a :: acts ->
      let e =
        match a with
        | Ast.Var _ | Ast.Int _ | Ast.Real _ | Ast.Bin _ | Ast.Un _ ->
          Ast.subst_var f a e
        | Ast.Index _ | Ast.Logic _ | Ast.Str _ -> e
      in
      go e fs acts
    | _, _ -> e
  in
  go e formals actuals

let translate_sec1 formals actuals ~caller_ok (s : sec1) : sec1 =
  let tr e =
    let e' = Ast.simplify (subst_formals formals actuals e) in
    if caller_ok e' then Some e' else None
  in
  match s with
  | Star -> Star
  | Point e -> ( match tr e with Some e -> Point e | None -> Star)
  | Range (a, b) -> (
    match (tr a, tr b) with
    | Some a, Some b -> Range (a, b)
    | _ -> Star)

(* Translate a callee array access through a call site.  Returns
   [(caller_array, access)] or [None] when the array does not map to a
   caller array. *)
let translate_access (cg : Callgraph.t) tbl (site : Callgraph.site)
    (callee_array : string) (acc : access) : (string * access) option =
  match Callgraph.formals_of cg site.Callgraph.callee with
  | None -> None
  | Some formals -> (
    let target =
      match List.find_index (String.equal callee_array) formals with
      | Some i -> (
        match List.nth_opt site.Callgraph.actuals i with
        | Some (Ast.Var b) when Symbol.is_array tbl b -> Some (b, true)
        | Some (Ast.Index (b, _)) when Symbol.is_array tbl b ->
          Some (b, false) (* offset section passed: lose precision *)
        | _ -> None)
      | None ->
        if Symbol.is_array tbl callee_array then Some (callee_array, true)
        else None
    in
    match target with
    | None -> None
    | Some (caller_array, precise) ->
      let caller_ok e =
        List.for_all
          (fun v ->
            match Symbol.lookup tbl v with
            | Some { kind = Symbol.Scalar; _ } -> true
            | _ -> false)
          (Ast.expr_vars e)
      in
      let tr_section sec =
        if not precise then List.map (fun _ -> Star) sec
        else
          List.map
            (translate_sec1 formals site.Callgraph.actuals ~caller_ok)
            sec
      in
      Some
        ( caller_array,
          {
            sec_w = Option.map tr_section acc.sec_w;
            sec_r = Option.map tr_section acc.sec_r;
          } ))

(* ------------------------------------------------------------------ *)
(* Per-unit summary                                                    *)
(* ------------------------------------------------------------------ *)

let unit_summary (cg : Callgraph.t)
    (summaries : (string, (string * access) list) Hashtbl.t)
    (u : Ast.program_unit) : (string * access) list =
  let tbl = Symbol.build u in
  let ctx = Defuse.make tbl u in
  let nest = Dependence.Loopnest.build u in
  let visible name =
    match Symbol.lookup tbl name with
    | Some (i : Symbol.info) -> i.formal || i.common <> None
    | None -> false
  in
  let allowed v =
    match Symbol.lookup tbl v with
    | Some (i : Symbol.info) ->
      i.formal || i.common <> None || i.param <> None
    | None -> false
  in
  let table : (string, access) Hashtbl.t = Hashtbl.create 8 in
  Ast.iter_stmts
    (fun (s : Ast.stmt) ->
      let loops = Dependence.Loopnest.enclosing nest s.Ast.sid in
      let add is_write (a, subs) =
        if visible a then begin
          let sec = List.map (dim_of_subscript ~allowed ~loops) subs in
          let acc =
            if is_write then { sec_w = Some sec; sec_r = None }
            else { sec_w = None; sec_r = Some sec }
          in
          add_access table a acc
        end
      in
      List.iter (add true) (Defuse.array_writes ctx s);
      List.iter (add false) (Defuse.array_reads ctx s);
      (* calls: translated callee sections, widened over our loops *)
      match s.Ast.node with
      | Ast.Call (callee, actuals) ->
        let site =
          { Callgraph.caller = u.Ast.uname; callee; call_sid = s.Ast.sid;
            actuals }
        in
        let callee_summary =
          Option.value ~default:[] (Hashtbl.find_opt summaries callee)
        in
        List.iter
          (fun (arr, acc) ->
            match translate_access cg tbl site arr acc with
            | Some (caller_array, acc) when visible caller_array ->
              (* widen over our enclosing loops: any of our loop ivs in
                 the translated sections become ranges *)
              let widen_sec sec =
                List.map
                  (fun s1 ->
                    match s1 with
                    | Star -> Star
                    | Point e -> dim_of_subscript ~allowed ~loops e
                    | Range (a, b) -> (
                      match
                        ( dim_of_subscript ~allowed ~loops a,
                          dim_of_subscript ~allowed ~loops b )
                      with
                      | Point a', Point b' -> Range (a', b')
                      | Range (a', _), Range (_, b') -> Range (a', b')
                      | Point a', Range (_, b') -> Range (a', b')
                      | Range (a', _), Point b' -> Range (a', b')
                      | _ -> Star))
                  sec
              in
              add_access table caller_array
                {
                  sec_w = Option.map widen_sec acc.sec_w;
                  sec_r = Option.map widen_sec acc.sec_r;
                }
            | _ -> ())
          callee_summary;
        (* unknown callee: every array actual and COMMON array is Star *)
        if not (Hashtbl.mem summaries callee) then begin
          let star_for a =
            let rank = max 1 (List.length (Symbol.array_dims tbl a)) in
            let sec = List.init rank (fun _ -> Star) in
            add_access table a { sec_w = Some sec; sec_r = Some sec }
          in
          List.iter
            (fun e ->
              match e with
              | Ast.Var b | Ast.Index (b, _) ->
                if Symbol.is_array tbl b && visible b then star_for b
              | _ -> ())
            actuals;
          List.iter
            (fun (i : Symbol.info) ->
              if i.common <> None && Symbol.is_array tbl i.name then
                star_for i.name)
            (Symbol.infos tbl)
        end
      | _ -> ())
    u.Ast.body;
  Hashtbl.fold (fun a acc l -> (a, acc) :: l) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let compute (cg : Callgraph.t) : t =
  let summaries = Hashtbl.create 16 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    List.iter
      (fun name ->
        match Callgraph.unit_named cg name with
        | None -> ()
        | Some u ->
          let s = unit_summary cg summaries u in
          let old = Hashtbl.find_opt summaries name in
          if old <> Some s then begin
            Hashtbl.replace summaries name s;
            changed := true
          end)
      (Callgraph.bottom_up cg)
  done;
  { cg; summaries }

let summary_of t name =
  Option.value ~default:[] (Hashtbl.find_opt t.summaries name)

let star_expr = Ast.Index ("%STAR", [])

let section_to_subs (sec : section) : Ast.expr list option =
  Some
    (List.map
       (function
         | Point e -> e
         | Range _ | Star -> star_expr)
       sec)

let call_refs t ~(site : Callgraph.site) ~tbl :
    (string * Ast.expr list option * bool) list =
  match Hashtbl.find_opt t.summaries site.Callgraph.callee with
  | Some callee_summary ->
    List.concat_map
      (fun (arr, acc) ->
        match translate_access t.cg tbl site arr acc with
        | None -> []
        | Some (caller_array, acc) ->
          let mk is_write sec =
            match sec with
            | None -> []
            | Some sec -> [ (caller_array, section_to_subs sec, is_write) ]
          in
          mk true acc.sec_w @ mk false acc.sec_r)
      callee_summary
  | None ->
    (* unknown callee: whole-array effects on array actuals and COMMONs *)
    let arrays =
      List.filter_map
        (fun e ->
          match e with
          | Ast.Var b | Ast.Index (b, _) ->
            if Symbol.is_array tbl b then Some b else None
          | _ -> None)
        site.Callgraph.actuals
      @ List.filter_map
          (fun (i : Symbol.info) ->
            if i.common <> None && Symbol.is_array tbl i.name then Some i.name
            else None)
          (Symbol.infos tbl)
      |> List.sort_uniq String.compare
    in
    List.concat_map (fun a -> [ (a, None, true); (a, None, false) ]) arrays
