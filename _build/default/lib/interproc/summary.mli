(** Whole-program interprocedural analysis coordinator.

    Runs the call graph, Mod/Ref, Kill, regular sections and
    interprocedural constants once, then hands each program unit the
    oracles the intraprocedural machinery consumes:

    - a {!Scalar_analysis.Defuse.call_oracle} giving each CALL's
      mods/refs/kills in caller space,
    - a {!Dependence.Depenv.call_refs} giving each CALL's array side
      effects as section-precise pseudo-references,
    - asserted values for formals that are interprocedural constants.

    [env_for] packages all three into a ready {!Dependence.Depenv.t}. *)

open Fortran_front

type t

val analyze : Ast.program -> t

val callgraph : t -> Callgraph.t
val modref : t -> Modref.t
val kills : t -> Ipkill.t
val sections : t -> Sections.t
val ipconst : t -> Ipconst.t
val aliases : t -> Aliases.t

(** Call oracle for CALL statements appearing in [unit]. *)
val oracle_for : t -> Ast.program_unit -> Scalar_analysis.Defuse.call_oracle

(** Section-precise array effects of CALL statements in [unit]. *)
val call_refs_for : t -> Ast.program_unit -> Dependence.Depenv.call_refs

(** Build a {!Dependence.Depenv.t} for [unit] with full
    interprocedural support.  [asserts] and [config] pass through;
    interprocedural formal constants are appended to the asserted
    values. *)
val env_for :
  ?config:Dependence.Depenv.config ->
  ?asserts:Dependence.Depenv.assertions ->
  t ->
  Ast.program_unit ->
  Dependence.Depenv.t
