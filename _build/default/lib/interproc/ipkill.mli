(** Interprocedural flow-sensitive scalar Kill analysis.

    A formal parameter or COMMON scalar is {e killed} by a unit when
    it is assigned on every control-flow path through the unit before
    any use.  A caller may then treat the variable as strongly defined
    by the CALL — which lets scalar privatization see through calls,
    the [nxsns]-style case the Ped evaluation highlights. *)

open Fortran_front

type t

(** [compute cg modref] — fixed point over the call graph so kills
    propagate through wrapper routines. *)
val compute : Callgraph.t -> Modref.t -> t

(** Scalars (formals and COMMON variables, callee name space) killed
    by the unit. *)
val kills_of : t -> string -> string list

(** Kills of one call site translated to the caller's name space: only
    whole-scalar actuals ([Var v]) can be killed. *)
val translate : t -> site:Callgraph.site -> tbl:Symbol.table -> string list
