(** Call graph of a whole program.

    Nodes are program units; edges are CALL sites with their actual
    arguments.  Fortran 77 forbids recursion, so the graph is expected
    to be acyclic; {!bottom_up} breaks any cycle arbitrarily (the
    analyses that consume the order iterate to a fixed point anyway,
    so a broken cycle only costs precision, not soundness). *)

open Fortran_front

type site = {
  caller : string;
  callee : string;
  call_sid : Ast.stmt_id;
  actuals : Ast.expr list;
}

type t

val build : Ast.program -> t
val program : t -> Ast.program
val unit_named : t -> string -> Ast.program_unit option
val unit_names : t -> string list
val sites : t -> site list

(** Call sites appearing in the given unit. *)
val sites_in : t -> string -> site list

(** Call sites targeting the given unit. *)
val sites_to : t -> string -> site list

val callees_of : t -> string -> string list
val callers_of : t -> string -> string list

(** Unit names ordered callees-first. *)
val bottom_up : t -> string list

(** Formal parameter names of a unit ([None] if unknown/external). *)
val formals_of : t -> string -> string list option

(** Graphviz rendering (the editor's call-graph display). *)
val dot : t -> string
