(** Navigation and transformation guidance — the enhancement the Ped
    evaluation asked for most: "tell me which loop matters and what to
    try on it".

    Combines the static performance estimator (loop ranking by
    predicted time share) with the power-steering diagnoses of every
    catalog transformation to produce concrete, ranked suggestions. *)

open Fortran_front
open Dependence

type suggestion = {
  loop : Ast.stmt_id;
  action : string;         (** catalog transformation name or "assert" hint *)
  why : string;
  share : float;           (** the loop's predicted share of unit time *)
  diagnosis : Transform.Diagnosis.t option;
}

(** Ranked suggestions, most valuable first.  Covers: parallelize
    (safe & profitable), interchange/skew/distribute when they unlock
    parallelism, and assertion hints when only pending dependences
    block a heavy loop. *)
val advise : Session.t -> suggestion list

val pp_suggestion : Format.formatter -> suggestion -> unit

(** The heaviest not-yet-parallel loop — "where should I look next". *)
val next_target : Session.t -> (Loopnest.loop * float) option
