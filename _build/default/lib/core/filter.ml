open Fortran_front
open Dependence

type dep_filter = {
  f_var : string option;
  f_kind : Ddg.kind option;
  f_carried_only : bool;
  f_loop : Ast.stmt_id option;
  f_stmt : Ast.stmt_id option;
  f_status : Marking.status option;
  f_hide_scalar : bool;
  f_hide_control : bool;
}

let default_dep_filter =
  {
    f_var = None;
    f_kind = None;
    f_carried_only = false;
    f_loop = None;
    f_stmt = None;
    f_status = None;
    f_hide_scalar = false;
    f_hide_control = true;
  }

let show_all = { default_dep_filter with f_hide_control = false }

let apply_dep_filter f marking deps =
  List.filter
    (fun (d : Ddg.dep) ->
      (match f.f_var with Some v -> String.equal d.Ddg.var v | None -> true)
      && (match f.f_kind with Some k -> d.Ddg.kind = k | None -> true)
      && ((not f.f_carried_only) || d.Ddg.level <> None)
      && (match f.f_loop with
         | Some sid -> d.Ddg.carrier = Some sid
         | None -> true)
      && (match f.f_stmt with
         | Some sid -> d.Ddg.src = sid || d.Ddg.dst = sid
         | None -> true)
      && (match f.f_status with
         | Some s -> Marking.status_of marking d = s
         | None -> true)
      && ((not f.f_hide_scalar) || not d.Ddg.is_scalar)
      && ((not f.f_hide_control) || d.Ddg.kind <> Ddg.Control))
    deps

type src_filter = Src_all | Src_contains of string | Src_loops

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  nl = 0
  ||
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let apply_src_filter f lines =
  match f with
  | Src_all -> lines
  | Src_contains text ->
    List.filter (fun (_, l) -> contains ~needle:text l) lines
  | Src_loops ->
    List.filter
      (fun (_, l) ->
        let t = String.trim l in
        (String.length t >= 3 && String.sub t 0 3 = "DO ")
        || (String.length t >= 9 && String.sub t 0 9 = "PARALLEL "))
      lines

let dep_filter_to_string f =
  let parts =
    (match f.f_var with Some v -> [ "var=" ^ v ] | None -> [])
    @ (match f.f_kind with
      | Some k -> [ "kind=" ^ Ddg.kind_to_string k ]
      | None -> [])
    @ (if f.f_carried_only then [ "carried" ] else [])
    @ (match f.f_loop with
      | Some sid -> [ Printf.sprintf "loop=s%d" sid ]
      | None -> [])
    @ (match f.f_stmt with
      | Some sid -> [ Printf.sprintf "stmt=s%d" sid ]
      | None -> [])
    @ (match f.f_status with
      | Some s -> [ "status=" ^ Marking.status_to_string s ]
      | None -> [])
    @ (if f.f_hide_scalar then [ "noscalar" ] else [])
    @ if f.f_hide_control then [ "nocontrol" ] else []
  in
  if parts = [] then "(none)" else String.concat " " parts
