(** The editor's command language.

    Every interaction the original Ped offered through menus and mouse
    clicks exists here as a typed command, so sessions can be driven
    interactively (bin/ped), scripted (examples, the evaluation
    harness) and tested deterministically.  [run] executes one command
    line and returns the text the user sees.

    Commands:
    {v
    help                      this list
    units                     program units
    unit NAME                 focus a unit
    loops                     loop summary (parallelizable?, time share)
    select sN                 select a loop
    src [loops|find TEXT|all] source pane (with view filter)
    deps [var X|kind K|carried|status S|scalar|all|reset]...
                              dependence pane (with view filter)
    vars                      variable pane for the selected loop
    outline                   loops and calls only (progressive disclosure)
    callgraph [dot]           whole-program call graph (textual or Graphviz)
    mark N accept|reject|pending
                              mark dependence #N
    assert VAR = N            assert a variable's value
    assert perm ARR           assert an index array is a permutation
    private sN VAR            declare VAR private in loop sN
    preview T ARGS            power-steering diagnosis only
    apply T ARGS [!]          apply transformation ([!] forces unsafe)
    edit sN TEXT              replace statement sN with parsed TEXT
    undo                      revert the last change
    history                   the transformations applied so far
    diff                      changed source lines vs the loaded program
    write FILE                save the (transformed) program as Fortran
    estimate [P]              static cost/speedup estimate
    advise                    ranked suggestions (estimator + diagnoses)
    simulate [P]              run on the simulated machine
    stats                     dependence-test statistics
    display                   all panes
    v}
    Transformations [T]: see {!Transform.Catalog.names}; [ARGS] are
    statement ids ([sN]), an integer factor, or a variable name, e.g.
    [apply interchange s12], [apply skew s12 1], [apply expand s12 T]. *)

val run : Session.t -> string -> string

(** Run a whole script (a list of command lines); returns each
    command's output, prefixed by the echoed command. *)
val script : Session.t -> string list -> string list

val help_text : string
