(** View filtering — the user-controlled emphasis/concealment of
    information that made Ped's panes usable on real codes.

    Dependence filters select by variable, dependence type, carrier,
    marking status, endpoint statement, or "carried only" (hide the
    loop-independent noise).  Source filters select lines by content
    or structure. *)

open Fortran_front
open Dependence

type dep_filter = {
  f_var : string option;
  f_kind : Ddg.kind option;
  f_carried_only : bool;
  f_loop : Ast.stmt_id option;     (** only deps carried by this loop *)
  f_stmt : Ast.stmt_id option;     (** only deps touching this statement *)
  f_status : Marking.status option;
  f_hide_scalar : bool;            (** hide scalar (non-array) deps *)
  f_hide_control : bool;
}

(** Everything visible except control dependences (Ped's default). *)
val default_dep_filter : dep_filter

(** No concealment at all. *)
val show_all : dep_filter

val apply_dep_filter :
  dep_filter -> Marking.t -> Ddg.dep list -> Ddg.dep list

type src_filter =
  | Src_all
  | Src_contains of string     (** lines containing this text *)
  | Src_loops                  (** loop headers only *)

val apply_src_filter :
  src_filter -> (Ast.stmt_id option * string) list ->
  (Ast.stmt_id option * string) list

val dep_filter_to_string : dep_filter -> string
