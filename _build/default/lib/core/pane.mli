(** Text rendering of Ped's three panes.

    The original Ped is an X11 application; this renders the same
    three-pane model — source, dependences, variables — as text, one
    string per pane, so the CLI, scripted sessions and tests all see
    exactly what a user would. *)

val source_pane : Session.t -> string

(** The dependence pane for the current selection and filter, one row
    per dependence: id, type, variable, endpoints, vector, level,
    status. *)
val dependence_pane : Session.t -> string

(** The variable pane for the selected loop: each variable's
    classification (induction / private / reduction / shared). *)
val variable_pane : Session.t -> string

(** One-line summary per loop: id, nesting, header, parallelizable?,
    estimated share of unit time. *)
val loops_pane : Session.t -> string

(** The whole display (all panes). *)
val full_display : Session.t -> string
