lib/core/filter.mli: Ast Ddg Dependence Fortran_front Marking
