lib/core/command.ml: Advisor Array Ast Buffer Ddg Dependence Filter Float Format Fortran_front Interproc List Marking Option Pane Perf Pretty Printf Session String Transform
