lib/core/session.ml: Ast Ddg Dependence Depenv Filter Format Fortran_front Interproc Lexer List Loc Loopnest Marking Parser Perf Printf Sim String Transform
