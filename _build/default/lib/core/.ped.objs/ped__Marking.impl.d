lib/core/marking.ml: Ddg Dependence List Map Printf String
