lib/core/marking.mli: Ddg Dependence
