lib/core/advisor.mli: Ast Dependence Format Fortran_front Loopnest Session Transform
