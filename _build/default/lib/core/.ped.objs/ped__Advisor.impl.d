lib/core/advisor.ml: Ast Ddg Dependence Depenv Format Fortran_front List Loopnest Marking Option Perf Printf Session String Transform
