lib/core/filter.ml: Ast Ddg Dependence Fortran_front List Marking Printf String
