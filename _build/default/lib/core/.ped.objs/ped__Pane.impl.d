lib/core/pane.ml: Array Ast Buffer Ddg Dependence Depenv Dtest Filter Fortran_front List Loopnest Marking Option Perf Pretty Printf Scalar_analysis Session String Varclass
