lib/core/pane.mli: Session
