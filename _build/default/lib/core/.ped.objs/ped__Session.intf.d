lib/core/session.mli: Ast Ddg Dependence Depenv Filter Fortran_front Interproc Loopnest Marking Transform
