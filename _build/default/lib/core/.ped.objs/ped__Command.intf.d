lib/core/command.mli: Session
