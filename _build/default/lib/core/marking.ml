open Dependence

type status = Proven | Pending | Accepted | Rejected

let status_to_string = function
  | Proven -> "proven"
  | Pending -> "pending"
  | Accepted -> "accepted"
  | Rejected -> "rejected"

module SMap = Map.Make (String)

type t = status SMap.t

let empty = SMap.empty

let key_of (d : Ddg.dep) =
  Printf.sprintf "%s:%s:%d:%d:%s" (Ddg.kind_to_string d.Ddg.kind) d.Ddg.var
    d.Ddg.src d.Ddg.dst
    (match d.Ddg.level with Some l -> string_of_int l | None -> "li")

let status_of t (d : Ddg.dep) =
  match SMap.find_opt (key_of d) t with
  | Some s -> s
  | None -> if d.Ddg.exact then Proven else Pending

let mark t d status =
  match status with
  | Accepted | Rejected -> SMap.add (key_of d) status t
  | Proven | Pending -> SMap.remove (key_of d) t

let rejected_ids t (g : Ddg.t) =
  List.filter_map
    (fun (d : Ddg.dep) ->
      if status_of t d = Rejected then Some d.Ddg.dep_id else None)
    g.Ddg.deps

let count t = SMap.cardinal t
