(** Dependence marking — proven / pending / accepted / rejected.

    Ped marks each dependence: {e proven} when an exact test
    established it, {e pending} otherwise.  The user sharpens analysis
    by marking pending dependences {e accepted} (treat as real) or
    {e rejected} (ignore it — the user knows the subscripts never
    overlap).  Rejected dependences no longer block parallelization.

    Marks must survive reanalysis (edits, transformations), so they
    key on a stable signature of the dependence (kind, variable,
    endpoint statement ids, level) rather than on the regenerated
    dependence-graph ids. *)

open Dependence

type status = Proven | Pending | Accepted | Rejected

val status_to_string : status -> string

type t

val empty : t

(** The signature key of a dependence. *)
val key_of : Ddg.dep -> string

(** Current status: user mark if any, else Proven/Pending from the
    analysis. *)
val status_of : t -> Ddg.dep -> status

(** [mark t dep status] — record a user mark ([Accepted]/[Rejected]);
    marking [Proven]/[Pending] clears the user's mark. *)
val mark : t -> Ddg.dep -> status -> t

(** Dependence ids (in the current graph) whose status is [Rejected]
    — the set parallelization checks ignore. *)
val rejected_ids : t -> Ddg.t -> int list

(** Number of user marks recorded. *)
val count : t -> int
