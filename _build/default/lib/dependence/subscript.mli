(** Subscript analysis: loop normalization and affine extraction.

    Every loop of a nest is normalized to an iteration counter τ
    running 0, 1, ..., trip with step 1 ([I = lo + step·τ]); subscript
    expressions are then expressed as linear forms over the τ symbols
    of the enclosing loops plus loop-invariant symbols.  Dependence
    tests ({!Dtest}) operate on these forms.

    Extraction applies, in order: forward substitution of unique
    scalar definitions ([J1 = J + 1] idiom), auxiliary-induction-
    variable rewriting ([K = K + c] becomes [K₀ + c·τ]), constant
    propagation of symbolic terms, and linearization.  Anything that
    survives none of these is {!Nonlinear} and forces a conservative
    assumed dependence — exactly the "symbolic subscript" failures the
    Ped evaluation catalogues. *)

open Fortran_front
open Scalar_analysis

type norm_loop = {
  nloop : Loopnest.loop;
  tau : string;        (** synthetic symbol, unique per loop *)
  step : int;          (** original step (≠ 0), or ±1 in raw mode *)
  lo_lin : Symbolic.Linear.t;  (** lower bound as a linear form *)
  trip : int option;   (** τ ranges over 0..trip; [None] = unknown *)
  trip_exact : bool;
      (** false when [trip] is only an upper bound (from an asserted
          range): sound for disproofs, but existence cannot be proven *)
  lo_known : bool;
      (** false in {e raw mode}: the lower bound was not affine (e.g.
          MAX/MIN bounds after a wavefront interchange), so τ stands
          for the induction variable itself (negated for negative
          steps) and ranges over all integers — the tests then use
          unbounded Banerjee ranges for it. *)
}

(** [normalize env loops] — normalize each loop of [loops] (outermost
    first).  A loop whose lower bound is not affine degrades to raw
    mode (see {!norm_loop.lo_known}); only a step of unknown sign
    yields [None] for the whole nest (dependence testing then assumes
    dependence). *)
val normalize : Depenv.t -> Loopnest.loop list -> norm_loop list option

type dim = Lin of Symbolic.Linear.t | Nonlinear

(** [analyze_ref env ~norm sid subscripts] — the subscripts of an
    array reference at statement [sid], as linear forms over the τ
    symbols of [norm] and residual symbols. *)
val analyze_ref :
  Depenv.t -> norm:norm_loop list -> Ast.stmt_id -> Ast.expr list -> dim list

(** The τ symbol of a loop. *)
val tau_of : Ast.stmt_id -> string

(** [symbols_ok env ~common ~src ~dst dims_pair] — true when every
    non-τ symbol of both dimension lists (a) reaches both statements
    with the same definitions and (b) is invariant in the outermost
    common loop.  Only then may equal symbols be cancelled during
    testing. *)
val symbols_ok :
  Depenv.t ->
  common:norm_loop list ->
  src:Ast.stmt_id ->
  dst:Ast.stmt_id ->
  dim list * dim list ->
  bool

(** Per-dimension variant: a dimension whose own symbols check out is
    usable even when a sibling dimension's are not (e.g. [A(I,I)]
    against [A(I,J)] — the first dimension still pins the distance). *)
val dim_symbols_ok :
  Depenv.t ->
  common:norm_loop list ->
  src:Ast.stmt_id ->
  dst:Ast.stmt_id ->
  dim * dim ->
  bool
