(** Bundle of all per-unit analyses the dependence machinery needs.

    Building one of these runs the scalar analyses (CFG, reaching
    definitions, liveness, constants, control dependence) over a
    program unit once; dependence testing, variable classification,
    the editor and the transformations all query it.

    The {!config} switches individual analyses off for the ablation
    experiments (Table 3): each switch corresponds to an analysis the
    Ped evaluation found indispensable.  {!assertions} carry user
    knowledge the editor collected — asserted variable values and
    injectivity ("this index array is a permutation") — which sharpen
    dependence testing exactly as Ped's user assertions do.  The
    optional [oracle] injects interprocedural Mod/Ref information into
    CALL handling — omitted, calls are treated conservatively. *)

open Fortran_front
open Scalar_analysis

type config = {
  use_constants : bool;      (** constant propagation feeds bounds/symbols *)
  use_symbolics : bool;      (** forward substitution, auxiliary induction
                                 variables, symbolic-term cancellation *)
  use_privatization : bool;  (** scalar kill → private variables *)
  recognize_reductions : bool;
  use_array_privatization : bool;
      (** the array-kill extension ({!Arrayprivate}): work arrays
          rewritten every iteration stop blocking parallelization *)
}

(** Everything on — Ped's full analysis. *)
val full_config : config

(** Dependence tests over literal subscripts only. *)
val base_config : config

type assertions = {
  asserted_values : (string * int) list;
      (** "N is 512": treated as a compile-time constant *)
  asserted_ranges : (string * int * int) list;
      (** "N is between 1 and 512": bounds loop trip counts, widening
          Banerjee ranges soundly (disproofs only use the upper end) *)
  asserted_injective : string list;
      (** "IDX is a permutation": [A(IDX(e))] matches only equal [e] *)
}

val no_assertions : assertions

(** Alias relation between two array names of the unit, supplied by
    interprocedural analysis: [`Aligned] — same storage, same origin
    (subscripts comparable); [`May] — overlap at unknown offset;
    [`No] — provably distinct (the default for distinct names). *)
type alias_oracle = string -> string -> [ `Aligned | `May | `No ]

(** Array side effects of a CALL statement, as pseudo-references:
    [(array, subscripts option, is_write)].  [None] subscripts mean
    the whole array.  Interprocedural section analysis supplies a
    precise version; the default treats every array actual and COMMON
    array as wholly read and written. *)
type call_refs = Ast.stmt -> (string * Ast.expr list option * bool) list

type t = {
  punit : Ast.program_unit;
  tbl : Symbol.table;
  ctx : Defuse.ctx;
  cfg : Cfg.t;
  reaching : Reaching.t;
  liveness : Liveness.t;
  constants : Constants.t;
  control : Control_dep.edge list;
  nest : Loopnest.t;
  config : config;
  asserts : assertions;
  call_refs : call_refs;
  alias : alias_oracle;
  oracle : Defuse.call_oracle option;  (** kept for {!remake} *)
}

val make :
  ?oracle:Defuse.call_oracle ->
  ?call_refs:call_refs ->
  ?alias:alias_oracle ->
  ?config:config ->
  ?asserts:assertions ->
  Ast.program_unit ->
  t

(** Statement lookup by id. *)
val stmt : t -> Ast.stmt_id -> Ast.stmt option

(** [remake t u] — re-run all analyses on a rewritten unit, keeping
    the oracle, configuration and assertions.  Transformations use it
    to re-analyze after (or to evaluate) a rewrite, as Ped reanalyzes
    incrementally after edits. *)
val remake : t -> Ast.program_unit -> t

(** Constant value of an expression at a statement, honouring the
    config switch and asserted values. *)
val int_at : t -> Ast.stmt_id -> Ast.expr -> int option

(** Constant value of a variable at a statement (config- and
    assertion-aware). *)
val const_var_at : t -> Ast.stmt_id -> string -> int option

(** Upper bound of an expression's value from asserted ranges and
    constants ([None] when unbounded).  Monotone widening: only +, −,
    and scaling by literals are tracked. *)
val upper_bound_at : t -> Ast.stmt_id -> Ast.expr -> int option
