open Fortran_front
open Scalar_analysis
module Linear = Symbolic.Linear

type norm_loop = {
  nloop : Loopnest.loop;
  tau : string;
  step : int;
  lo_lin : Linear.t;
  trip : int option;
  trip_exact : bool;
  lo_known : bool;
}

type dim = Lin of Linear.t | Nonlinear

let tau_of sid = Printf.sprintf "%%t%d" sid
let aux_sym v loop_sid = Printf.sprintf "%%aux%s@%d" v loop_sid

let is_tau s = String.length s > 2 && s.[0] = '%' && s.[1] = 't'

let aux_sym_loop s =
  (* "%auxK@123" -> Some 123 *)
  if String.length s > 5 && String.sub s 0 4 = "%aux" then
    match String.index_opt s '@' with
    | Some i -> int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
    | None -> None
  else None

let floor_div a b =
  (* floor division, b <> 0 *)
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

(* Resolver for linearization at statement [sid]: rewrites normalized
   induction variables, auxiliary induction variables and proven
   constants.  [norm] lists the loops outermost first. *)
let resolver (env : Depenv.t) (norm : norm_loop list) sid : string -> Linear.t option =
  (* auxiliary induction variables per normalized loop, with the
     flattened source position of their increment *)
  let aux_table =
    if not env.Depenv.config.Depenv.use_symbolics then []
    else
      List.concat_map
        (fun nl ->
          let loop_sid = nl.nloop.Loopnest.lstmt.Ast.sid in
          let body = Loopnest.body_stmts env.Depenv.nest loop_sid in
          let pos_of target =
            let rec go i = function
              | [] -> None
              | (s : Ast.stmt) :: rest ->
                if s.Ast.sid = target then Some i else go (i + 1) rest
            in
            go 0 body
          in
          List.filter_map
            (fun (v, stride, inc_sid) ->
              match pos_of inc_sid with
              | Some p -> Some (v, (nl, stride, p, pos_of))
              | None -> None)
            (Varclass.aux_inductions env.Depenv.ctx nl.nloop.Loopnest.lstmt))
        norm
  in
  fun v ->
    match List.find_opt (fun nl -> String.equal nl.nloop.Loopnest.header.Ast.dvar v) norm with
    | Some nl ->
      (* I = lo + step·τ *)
      Some (Linear.add nl.lo_lin (Linear.scale nl.step (Linear.sym nl.tau)))
    | None -> (
      match Depenv.const_var_at env sid v with
      | Some n -> Some (Linear.const n)
      | None -> (
        match List.assoc_opt v aux_table with
        | Some (nl, stride, inc_pos, pos_of) -> (
          (* value of v at [sid] in iteration τ of nl's loop:
             v₀ + stride·τ (+ stride when sid follows the increment) *)
          match pos_of sid with
          | Some p ->
            let base =
              Linear.add
                (Linear.sym (aux_sym v nl.nloop.Loopnest.lstmt.Ast.sid))
                (Linear.scale stride (Linear.sym nl.tau))
            in
            Some
              (if p > inc_pos then Linear.add base (Linear.const stride)
               else base)
          | None -> None)
        | None -> None))

let normalize (env : Depenv.t) (loops : Loopnest.loop list) :
    norm_loop list option =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | (lp : Loopnest.loop) :: rest -> (
      let sid = lp.Loopnest.lstmt.Ast.sid in
      let h = lp.Loopnest.header in
      let step =
        match h.Ast.step with
        | None -> Some 1
        | Some e -> Depenv.int_at env sid e
      in
      match step with
      | None | Some 0 -> None
      | Some step -> (
        let resolve = resolver env (List.rev acc) sid in
        match Symbolic.linearize ~resolve h.Ast.lo with
        | None ->
          (* raw mode: τ = sign(step)·iv, unknown bounds *)
          let sgn = if step > 0 then 1 else -1 in
          let nl =
            { nloop = lp; tau = tau_of sid; step = sgn;
              lo_lin = Linear.const 0; trip = None; trip_exact = false;
              lo_known = false }
          in
          go (nl :: acc) rest
        | Some lo_lin ->
          let hi_lin = Symbolic.linearize ~resolve h.Ast.hi in
          let trip, trip_exact =
            match hi_lin with
            | None -> (None, false)
            | Some hi_lin -> (
              match Linear.is_const (Linear.sub hi_lin lo_lin) with
              | Some diff -> (Some (floor_div diff step), true)
              | None ->
                (* asserted ranges give a sound upper bound on the
                   trip count for positive steps *)
                if step > 0 then
                  match
                    Depenv.upper_bound_at env sid
                      (Ast.sub h.Ast.hi h.Ast.lo)
                  with
                  | Some diff -> (Some (floor_div diff step), false)
                  | None -> (None, false)
                else (None, false))
          in
          let nl =
            { nloop = lp; tau = tau_of sid; step; lo_lin; trip; trip_exact;
              lo_known = true }
          in
          go (nl :: acc) rest))
  in
  go [] loops

let analyze_ref (env : Depenv.t) ~(norm : norm_loop list) sid
    (subscripts : Ast.expr list) : dim list =
  let cfgc = env.Depenv.config in
  let resolve = resolver env norm sid in
  let rec analyze_dim e =
    let e' =
      if cfgc.Depenv.use_symbolics then
        Symbolic.substitute env.Depenv.ctx env.Depenv.cfg env.Depenv.reaching
          sid e
      else e
    in
    match e' with
    | Ast.Index (b, [ inner ])
      when List.mem b env.Depenv.asserts.Depenv.asserted_injective ->
      (* IDX asserted injective: A(IDX(e)) and A(IDX(e')) touch the
         same element exactly when e = e' — test the inner subscript *)
      analyze_dim inner
    | _ -> (
      match Symbolic.linearize ~resolve e' with
      | Some lin ->
        if
          cfgc.Depenv.use_symbolics
          || List.for_all is_tau (Linear.syms lin)
        then Lin lin
        else Nonlinear (* symbolic terms unusable without symbolic analysis *)
      | None -> Nonlinear)
  in
  List.map analyze_dim subscripts

let syms_ok_impl (env : Depenv.t) ~(common : norm_loop list) ~src ~dst syms =
  let outermost = match common with [] -> None | nl :: _ -> Some nl in
  let same_defs v =
    let a = Reaching.defs_of_use env.Depenv.reaching src v in
    let b = Reaching.defs_of_use env.Depenv.reaching dst v in
    List.length a = List.length b
    && List.for_all2 (fun x y -> Reaching.def_compare x y = 0) a b
  in
  List.for_all
    (fun s ->
      match aux_sym_loop s with
      | Some loop_sid -> (
        (* an auxiliary-induction entry value is only a well-defined
           single symbol when its loop is the outermost common loop *)
        match outermost with
        | Some nl -> nl.nloop.Loopnest.lstmt.Ast.sid = loop_sid
        | None -> false)
      | None ->
        same_defs s
        &&
        (match outermost with
        | Some nl ->
          Symbolic.invariant_in env.Depenv.ctx nl.nloop.Loopnest.lstmt s
        | None -> true))
    syms

let dims_syms dims =
  List.concat_map (function Lin l -> Linear.syms l | Nonlinear -> []) dims
  |> List.sort_uniq String.compare
  |> List.filter (fun s -> not (is_tau s))

let symbols_ok env ~common ~src ~dst ((d1, d2) : dim list * dim list) =
  syms_ok_impl env ~common ~src ~dst (dims_syms (d1 @ d2))

let dim_symbols_ok env ~common ~src ~dst ((d1, d2) : dim * dim) =
  syms_ok_impl env ~common ~src ~dst (dims_syms [ d1; d2 ])
