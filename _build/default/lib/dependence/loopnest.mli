(** Loop-nest structure of a program unit.

    Assigns every DO loop its nesting depth and parents and answers
    the containment queries dependence analysis and transformations
    ask constantly ("the loops enclosing both endpoints, outermost
    first"). *)

open Fortran_front

type loop = {
  lstmt : Ast.stmt;            (** the DO statement *)
  header : Ast.do_header;
  depth : int;                 (** 1 = outermost *)
  parents : Ast.stmt_id list;  (** enclosing loop ids, outermost first *)
}

type t

val build : Ast.program_unit -> t

(** All loops in preorder (outer before inner, source order). *)
val loops : t -> loop list

val find : t -> Ast.stmt_id -> loop option

(** Loops strictly enclosing a statement, outermost first — includes
    the loop itself when [sid] is a DO statement only if it encloses
    itself = no. *)
val enclosing : t -> Ast.stmt_id -> loop list

(** Loops enclosing both statements, outermost first. *)
val common : t -> Ast.stmt_id -> Ast.stmt_id -> loop list

(** Statements (transitively) inside a loop, in source order,
    excluding the DO itself. *)
val body_stmts : t -> Ast.stmt_id -> Ast.stmt list

(** Is [inner] nested (transitively) inside [outer]? *)
val nested_in : t -> inner:Ast.stmt_id -> outer:Ast.stmt_id -> bool

(** The unit this nest information describes. *)
val unit_of : t -> Ast.program_unit

(** Maximum nesting depth in the unit (0 when loop-free). *)
val max_depth : t -> int

(** Does [sid] (any statement) lie inside the loop [loop_sid]? *)
val stmt_in_loop : t -> Ast.stmt_id -> loop_sid:Ast.stmt_id -> bool
