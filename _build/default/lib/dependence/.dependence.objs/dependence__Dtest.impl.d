lib/dependence/dtest.ml: Array Ast Depenv Fortran_front Hashtbl List Option Scalar_analysis Subscript
