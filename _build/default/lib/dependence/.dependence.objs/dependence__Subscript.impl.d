lib/dependence/subscript.ml: Ast Depenv Fortran_front List Loopnest Printf Reaching Scalar_analysis String Symbolic Varclass
