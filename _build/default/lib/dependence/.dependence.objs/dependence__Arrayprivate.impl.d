lib/dependence/arrayprivate.ml: Ast Defuse Depenv Fortran_front List Liveness Option Scalar_analysis String Symbol
