lib/dependence/depenv.mli: Ast Cfg Constants Control_dep Defuse Fortran_front Liveness Loopnest Reaching Scalar_analysis Symbol
