lib/dependence/depenv.ml: Ast Cfg Constants Control_dep Defuse Fortran_front List Liveness Loopnest Option Reaching Scalar_analysis String Symbol
