lib/dependence/ddg.mli: Ast Depenv Dtest Format Fortran_front
