lib/dependence/loopnest.mli: Ast Fortran_front
