lib/dependence/dtest.mli: Ast Depenv Fortran_front Subscript
