lib/dependence/arrayprivate.mli: Ast Depenv Fortran_front
