lib/dependence/loopnest.ml: Ast Fortran_front Hashtbl List
