lib/dependence/subscript.mli: Ast Depenv Fortran_front Loopnest Scalar_analysis Symbolic
