open Fortran_front
open Scalar_analysis

(* An access inside the loop body:
   - [pos]: index of the top-level body statement containing it;
   - [chain]: the DO loops (headers) between the body and the access,
     outermost first, with no intervening IF when [uncond];
   - [order]: flattened source order, for same-chain coverage;
   - [uncond]: no IF (or other guard) above it within its top-level
     statement — it executes on every iteration of its chain. *)
type access = {
  acc_subs : Ast.expr list;
  pos : int;
  chain : Ast.do_header list;
  order : int;
  uncond : bool;
}

(* Normalize subscripts for cross-chain (sweep) matching: a subscript
   that is exactly a chain induction variable becomes its chain depth;
   integer constants stay; anything else defeats the match. *)
let sweep_pattern (chain : Ast.do_header list) subs :
    [ `Iv of int | `Const of int ] list option =
  let ivs = List.mapi (fun i h -> (h.Ast.dvar, i)) chain in
  let norm = function
    | Ast.Var v -> Option.map (fun i -> `Iv i) (List.assoc_opt v ivs)
    | Ast.Int n -> Some (`Const n)
    | _ -> None
  in
  let rec go = function
    | [] -> Some []
    | e :: rest -> (
      match (norm e, go rest) with
      | Some x, Some xs -> Some (x :: xs)
      | _ -> None)
  in
  go subs

let bounds_equal (c1 : Ast.do_header list) (c2 : Ast.do_header list) =
  List.length c1 = List.length c2
  && List.for_all2
       (fun (a : Ast.do_header) (b : Ast.do_header) ->
         Ast.expr_equal a.Ast.lo b.Ast.lo
         && Ast.expr_equal a.Ast.hi b.Ast.hi
         && (match (a.Ast.step, b.Ast.step) with
            | None, None -> true
            | Some x, Some y -> Ast.expr_equal x y
            | None, Some (Ast.Int 1) | Some (Ast.Int 1), None -> true
            | _ -> false))
       c1 c2

let in_loop (env : Depenv.t) loop_sid : string list =
  if not env.Depenv.config.Depenv.use_array_privatization then []
  else
    match Depenv.stmt env loop_sid with
    | Some { Ast.node = Ast.Do (_, body); _ } ->
      let ctx = env.Depenv.ctx in
      let tbl = env.Depenv.tbl in
      let unstructured =
        Ast.fold_stmts
          (fun acc s ->
            acc
            || match s.Ast.node with
               | Ast.Goto _ | Ast.Return | Ast.Stop -> true
               | _ -> false)
          false body
      in
      if unstructured then []
      else begin
        let reads : (string * access) list ref = ref [] in
        let writes : (string * access) list ref = ref [] in
        let called_arrays = ref [] in
        let order = ref 0 in
        let rec walk pos chain uncond (s : Ast.stmt) =
          incr order;
          let here = !order in
          let add_access store (a, subs) =
            store :=
              (a, { acc_subs = subs; pos; chain = List.rev chain; order = here;
                    uncond })
              :: !store
          in
          List.iter (add_access writes) (Defuse.array_writes ctx s);
          List.iter (add_access reads) (Defuse.array_reads ctx s);
          match s.Ast.node with
          | Ast.Call _ ->
            let eff = Defuse.effects_of_call ctx s in
            called_arrays :=
              List.filter (Symbol.is_array tbl)
                (eff.Defuse.ce_mods @ eff.Defuse.ce_refs)
              @ !called_arrays
          | Ast.Do (h, b) -> List.iter (walk pos (h :: chain) uncond) b
          | Ast.If (branches, els) ->
            List.iter
              (fun (_, b) -> List.iter (walk pos chain false) b)
              branches;
            List.iter (walk pos chain false) els
          | Ast.Assign _ | Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop
          | Ast.Print _ -> ()
        in
        List.iteri (fun pos top -> walk pos [] true top) body;
        let arrays =
          List.sort_uniq String.compare (List.map fst !writes)
        in
        let covers (r : access) (w : access) =
          w.uncond
          && ((* rule A: same chain, textually identical subscripts, write
                 strictly earlier — same iteration, same element *)
              (w.pos = r.pos
           && bounds_equal w.chain r.chain
           && List.length w.chain = List.length r.chain
           && List.for_all2
                (fun (a : Ast.do_header) (b : Ast.do_header) ->
                  String.equal a.Ast.dvar b.Ast.dvar)
                w.chain r.chain
           && w.order < r.order
               && List.length w.acc_subs = List.length r.acc_subs
               && List.for_all2 Ast.expr_equal w.acc_subs r.acc_subs)
             ||
             (* rule B: an earlier sweep with the same bounds writes the
                same index pattern — the whole section the read touches
                was freshly written this iteration *)
             (w.pos < r.pos
              && bounds_equal w.chain r.chain
              &&
              match
                ( sweep_pattern w.chain w.acc_subs,
                  sweep_pattern r.chain r.acc_subs )
              with
              | Some pw, Some pr -> pw = pr
              | _ -> false))
        in
        let privatizable a =
          (not (List.mem a !called_arrays))
          && (not
                (List.mem a
                   (Liveness.live_after env.Depenv.liveness env.Depenv.cfg
                      loop_sid)))
          && List.for_all
               (fun (ra, r) ->
                 (not (String.equal ra a))
                 || List.exists
                      (fun (wa, w) -> String.equal wa a && covers r w)
                      !writes)
               !reads
        in
        List.filter privatizable arrays
      end
    | _ -> []

let privatizable env loop_sid x = List.mem x (in_loop env loop_sid)
