(** Array privatization — the "array kill analysis" the Ped
    evaluation called for (the arc3d / slab2d cases) and left as
    future work; implemented here as an extension.

    An array X is privatizable in a loop when every iteration writes
    the elements it reads before reading them, and the values do not
    outlive the loop.  We establish this with a conservative
    per-element argument:

    - every read of [X(e⃗)] in the body is {e covered}: some top-level
      (unconditionally executed) statement earlier in the body writes
      [X(e⃗)] with structurally identical subscripts;
    - X is not live after the loop;
    - X is not touched by CALLs and the body has no unstructured
      control flow.

    Identical subscript expressions evaluate to the same element
    within one iteration, so each iteration reads only its own writes
    — the loop-carried anti and output dependences on X are artifacts
    of storage reuse and disappear under privatization. *)

open Fortran_front

(** Arrays privatizable in the given DO loop. *)
val in_loop : Depenv.t -> Ast.stmt_id -> string list

(** [privatizable env loop_sid x] — is this array privatizable here? *)
val privatizable : Depenv.t -> Ast.stmt_id -> string -> bool
