open Fortran_front

type loop = {
  lstmt : Ast.stmt;
  header : Ast.do_header;
  depth : int;
  parents : Ast.stmt_id list;
}

type t = {
  unit_ : Ast.program_unit;
  all : loop list;                          (* preorder *)
  by_id : (Ast.stmt_id, loop) Hashtbl.t;
  enclosing_of : (Ast.stmt_id, Ast.stmt_id list) Hashtbl.t;
      (* for every statement: enclosing loop ids, outermost first *)
}

let build (u : Ast.program_unit) : t =
  let all = ref [] in
  let by_id = Hashtbl.create 16 in
  let enclosing_of = Hashtbl.create 64 in
  let rec walk parents stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        Hashtbl.replace enclosing_of s.Ast.sid (List.rev parents);
        match s.Ast.node with
        | Ast.Do (h, body) ->
          let lp =
            {
              lstmt = s;
              header = h;
              depth = List.length parents + 1;
              parents = List.rev parents;
            }
          in
          all := lp :: !all;
          Hashtbl.replace by_id s.Ast.sid lp;
          walk (s.Ast.sid :: parents) body
        | Ast.If (branches, els) ->
          List.iter (fun (_, body) -> walk parents body) branches;
          walk parents els
        | Ast.Assign _ | Ast.Call _ | Ast.Goto _ | Ast.Continue | Ast.Return
        | Ast.Stop | Ast.Print _ -> ())
      stmts
  in
  walk [] u.Ast.body;
  { unit_ = u; all = List.rev !all; by_id; enclosing_of }

let loops t = t.all
let find t sid = Hashtbl.find_opt t.by_id sid
let unit_of t = t.unit_

let enclosing t sid =
  match Hashtbl.find_opt t.enclosing_of sid with
  | None -> []
  | Some ids -> List.filter_map (Hashtbl.find_opt t.by_id) ids

let common t sid1 sid2 =
  let l1 = enclosing t sid1 and l2 = enclosing t sid2 in
  let rec go a b =
    match (a, b) with
    | x :: xs, y :: ys when x.lstmt.Ast.sid = y.lstmt.Ast.sid -> x :: go xs ys
    | _ -> []
  in
  go l1 l2

let body_stmts t sid =
  match find t sid with
  | Some { lstmt = { Ast.node = Ast.Do (_, body); _ }; _ } ->
    List.rev (Ast.fold_stmts (fun acc s -> s :: acc) [] body)
  | Some _ | None -> []

let nested_in t ~inner ~outer =
  List.exists (fun l -> l.lstmt.Ast.sid = outer) (enclosing t inner)

let stmt_in_loop t sid ~loop_sid =
  match Hashtbl.find_opt t.enclosing_of sid with
  | Some ids -> List.mem loop_sid ids
  | None -> false

let max_depth t = List.fold_left (fun m l -> max m l.depth) 0 t.all
