(** Scalar expansion — replace a scalar temporary with a per-iteration
    array element, removing the anti/output dependences the shared
    temporary induces.

    Applicable when the variable is classified [Private] in the loop
    (written before read on every iteration) and the trip count is a
    known constant (the expansion array needs a static size).  When
    the scalar is live after the loop its last value is copied out.
    This was the single transformation Blume & Eigenmann found to
    consistently pay off. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> var:string -> Diagnosis.t
val apply : Depenv.t -> Ast.stmt_id -> var:string -> Ast.program_unit
