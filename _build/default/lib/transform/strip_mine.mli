(** Strip mining — split a loop into strips of a fixed block size.

    [DO I = lo, hi] becomes an outer loop over strip starts and an
    inner loop over [MIN] -bounded strips.  A pure reindexing, so
    always safe; the standard preparation for scheduling and memory
    blocking (with interchange it yields tiling). *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> block:int -> Diagnosis.t

(** [apply env u sid ~block] — the outer strip loop takes the original
    statement id. *)
val apply : Depenv.t -> Ast.stmt_id -> block:int -> Ast.program_unit
