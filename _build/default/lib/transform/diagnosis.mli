(** Power-steering diagnosis — the advice Ped gives before carrying
    out a transformation.

    Every transformation answers three questions: is it {e applicable}
    (syntactically meaningful here), {e safe} (dependences show the
    meaning is preserved), and {e profitable} (heuristically worth
    doing).  Ped performs an unsafe transformation only if the user
    insists; the editor layer enforces that policy. *)

type t = {
  applicable : bool;
  safe : bool;
  profitable : bool;
  notes : string list;  (** human-readable reasons, newest first *)
}

val make :
  ?applicable:bool -> ?safe:bool -> ?profitable:bool -> ?notes:string list ->
  unit -> t

(** Not applicable, with a reason; safety and profit are moot. *)
val inapplicable : string -> t

val note : t -> string -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [ok d] — applicable and safe (the editor's bar for applying
    without an override). *)
val ok : t -> bool
