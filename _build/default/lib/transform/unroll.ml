open Fortran_front
open Dependence

let trip_and_step (env : Depenv.t) sid (h : Ast.do_header) =
  let step =
    match h.Ast.step with
    | None -> Some 1
    | Some e -> Depenv.int_at env sid e
  in
  match step with
  | None | Some 0 -> None
  | Some st -> (
    match Depenv.int_at env sid (Ast.sub h.Ast.hi h.Ast.lo) with
    | Some diff when (diff >= 0) = (st > 0) -> Some ((diff / st) + 1, st)
    | Some _ -> Some (0, st)
    | None -> None)

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid ~factor : Diagnosis.t =
  ignore ddg;
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (_, h, body) ->
    if factor < 2 then Diagnosis.inapplicable "unroll factor must be at least 2"
    else begin
      (* the induction variable must not be assigned in the body *)
      let iv_assigned =
        Ast.fold_stmts
          (fun acc s ->
            acc
            || match s.Ast.node with
               | Ast.Assign (Ast.Var v, _) -> String.equal v h.Ast.dvar
               | _ -> false)
          false body
      in
      if iv_assigned then
        Diagnosis.inapplicable "induction variable assigned in the body"
      else
        match trip_and_step env sid h with
        | None -> Diagnosis.inapplicable "trip count is not a known constant"
        | Some (trip, _) ->
          if trip mod factor <> 0 then
            Diagnosis.inapplicable
              (Printf.sprintf "trip count %d not divisible by %d" trip factor)
          else
            Diagnosis.make ~applicable:true ~safe:true ~profitable:(trip >= factor)
              ~notes:[ Printf.sprintf "%d iterations per unrolled body" factor ]
              ()
    end

let apply (env : Depenv.t) sid ~factor : Ast.program_unit =
  let u = env.Depenv.punit in
  match Rewrite.find_do u sid with
  | None -> invalid_arg "Unroll.apply: not a DO loop"
  | Some (loop, h, body) -> (
    match trip_and_step env sid h with
    | None -> invalid_arg "Unroll.apply: unknown trip count"
    | Some (_, st) ->
      let copies =
        List.concat_map
          (fun k ->
            let copy = Rewrite.refresh_sids body in
            if k = 0 then copy
            else
              Rewrite.subst_in_stmts h.Ast.dvar
                (Ast.simplify (Ast.add (Ast.Var h.Ast.dvar) (Ast.int_ (k * st))))
                copy)
          (List.init factor Fun.id)
      in
      let h' = { h with Ast.step = Some (Ast.Int (st * factor)) } in
      let loop' = { loop with Ast.node = Ast.Do (h', copies) } in
      Rewrite.replace_stmt u sid [ loop' ])
