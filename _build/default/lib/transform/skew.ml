open Fortran_front
open Dependence

let perfect_pair u sid =
  match Rewrite.find_do u sid with
  | Some (outer, h1, [ ({ Ast.node = Ast.Do (h2, inner_body); _ } as inner) ])
    ->
    Some (outer, h1, inner, h2, inner_body)
  | Some _ | None -> None

(* forward declaration dance: [apply] is defined below but diagnose
   evaluates the actual candidate *)
let rec diagnose (env : Depenv.t) (ddg : Ddg.t) sid ~factor : Diagnosis.t =
  ignore ddg;
  match perfect_pair env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a perfect two-deep loop nest"
  | Some (_, _, inner, _, _) ->
    if factor = 0 then Diagnosis.inapplicable "skew factor must be nonzero"
    else begin
      (* Skewing is always safe; it pays off when the wavefront recipe
         (skew, interchange, parallelize the new inner loop) works.
         Evaluate the recipe on the candidate directly. *)
      let profitable, why =
        match skew_then_interchange env sid ~factor with
        | Some env2 ->
          let ddg2 = Ddg.compute env2 in
          if Ddg.parallelizable env2 ddg2 inner.Ast.sid then
            (true, "after interchange the inner loop parallelizes (wavefront)")
          else (false, "inner loop still carries dependences after the recipe")
        | None -> (false, "interchange is not possible after skewing")
      in
      Diagnosis.make ~applicable:true ~safe:true ~profitable ~notes:[ why ] ()
    end

and skew_then_interchange env sid ~factor : Depenv.t option =
  let candidate1 = apply_unit env.Depenv.punit sid ~factor in
  let env1 = Depenv.remake env candidate1 in
  let ddg1 = Ddg.compute env1 in
  let di = Interchange.diagnose env1 ddg1 sid in
  if di.Diagnosis.applicable && di.Diagnosis.safe then
    let candidate2 = Interchange.apply candidate1 sid in
    Some (Depenv.remake env candidate2)
  else None

and apply_unit (u : Ast.program_unit) sid ~factor : Ast.program_unit =
  match perfect_pair u sid with
  | None -> invalid_arg "Skew.apply: not a perfect nest"
  | Some (outer, h1, inner, h2, inner_body) ->
    let i = Ast.Var h1.Ast.dvar in
    let shift e =
      Ast.simplify (Ast.add e (Ast.mul (Ast.int_ factor) i))
    in
    (* J := J' − f·I in the body *)
    let j_new =
      Ast.simplify
        (Ast.sub (Ast.Var h2.Ast.dvar) (Ast.mul (Ast.int_ factor) i))
    in
    let body' = Rewrite.subst_in_stmts h2.Ast.dvar j_new inner_body in
    let h2' = { h2 with Ast.lo = shift h2.Ast.lo; hi = shift h2.Ast.hi } in
    let inner' = { inner with Ast.node = Ast.Do (h2', body') } in
    let outer' = { outer with Ast.node = Ast.Do (h1, [ inner' ]) } in
    Rewrite.replace_stmt u sid [ outer' ]

let apply u sid ~factor = apply_unit u sid ~factor
