open Fortran_front
open Scalar_analysis
open Dependence

(* Def-use webs of [var] within the loop body.

   A web is a connected component of the relation "definition d
   reaches use u".  We compute, for each body statement that reads
   [var], the set of body definitions reaching it, and union them. *)

type webs = {
  def_web : (Ast.stmt_id, int) Hashtbl.t;  (* canonical web per def *)
  use_web : (Ast.stmt_id, int) Hashtbl.t;  (* web of the uses at a stmt *)
  n_webs : int;
}

exception Not_renamable of string

let analyze_webs (env : Depenv.t) (body : Ast.stmt list) var : webs =
  let ctx = env.Depenv.ctx in
  let defs = ref [] and uses = ref [] in
  Ast.iter_stmts
    (fun s ->
      (match s.Ast.node with
      | Ast.Assign (Ast.Var v, _) when String.equal v var ->
        defs := s.Ast.sid :: !defs
      | Ast.Call (_, args)
        when List.exists (fun a -> a = Ast.Var var) args ->
        raise (Not_renamable (var ^ " is passed to a CALL"))
      | _ ->
        if List.mem var (Defuse.may_defs ctx s) then
          raise (Not_renamable (var ^ " is modified by something unrenamable")));
      if List.mem var (Defuse.uses ctx s) then uses := s.Ast.sid :: !uses)
    body;
  let defs = List.rev !defs and uses = List.rev !uses in
  if defs = [] then raise (Not_renamable (var ^ " is never defined in the body"));
  (* union-find over defs *)
  let parent = Hashtbl.create 8 in
  List.iter (fun d -> Hashtbl.replace parent d d) defs;
  let rec find d =
    let p = Hashtbl.find parent d in
    if p = d then d
    else begin
      let r = find p in
      Hashtbl.replace parent d r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  let use_defs = Hashtbl.create 8 in
  List.iter
    (fun u ->
      let reaching = Reaching.defs_of_use env.Depenv.reaching u var in
      let body_defs =
        List.filter_map
          (fun (d : Reaching.def) ->
            match d.Reaching.def_at with
            | Cfg.Stmt sid when List.mem sid defs -> Some sid
            | Cfg.Stmt _ | Cfg.Entry ->
              raise
                (Not_renamable
                   (var ^ " is read before the body defines it"))
            | Cfg.Exit -> None)
          reaching
      in
      (match body_defs with
      | [] -> raise (Not_renamable (var ^ " has a use with no body definition"))
      | d0 :: rest ->
        List.iter (union d0) rest;
        Hashtbl.replace use_defs u d0))
    uses;
  let canon = Hashtbl.create 8 in
  let next = ref 0 in
  let web_of d =
    let r = find d in
    match Hashtbl.find_opt canon r with
    | Some i -> i
    | None ->
      let i = !next in
      incr next;
      Hashtbl.replace canon r i;
      i
  in
  let def_web = Hashtbl.create 8 in
  List.iter (fun d -> Hashtbl.replace def_web d (web_of d)) defs;
  let use_web = Hashtbl.create 8 in
  Hashtbl.iter (fun u d -> Hashtbl.replace use_web u (web_of d)) use_defs;
  { def_web; use_web; n_webs = !next }

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid ~var : Diagnosis.t =
  ignore ddg;
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (_, _, body) -> (
    match Symbol.lookup env.Depenv.tbl var with
    | Some { kind = Symbol.Scalar; _ } -> (
      if
        List.mem var
          (Liveness.live_after env.Depenv.liveness env.Depenv.cfg sid)
      then
        Diagnosis.inapplicable (var ^ "'s value is observed after the loop")
      else
        match analyze_webs env body var with
        | { n_webs; _ } when n_webs >= 2 ->
          Diagnosis.make ~applicable:true ~safe:true ~profitable:true
            ~notes:
              [ Printf.sprintf "%s has %d independent webs: renaming splits them"
                  var n_webs ]
            ()
        | _ ->
          Diagnosis.inapplicable
            (var ^ " has a single def-use web: nothing to split")
        | exception Not_renamable why -> Diagnosis.inapplicable why)
    | Some _ -> Diagnosis.inapplicable (var ^ " is not a scalar")
    | None -> Diagnosis.inapplicable (var ^ " is not declared"))

let apply (env : Depenv.t) sid ~var : Ast.program_unit =
  let u = env.Depenv.punit in
  match Rewrite.find_do u sid with
  | None -> invalid_arg "Rename_scalar.apply: not a DO loop"
  | Some (loop, h, body) ->
    let webs = analyze_webs env body var in
    (* fresh names for webs 1..n-1; web 0 keeps the original *)
    let names = Hashtbl.create 4 in
    Hashtbl.replace names 0 var;
    for w = 1 to webs.n_webs - 1 do
      (* distinct bases give distinct results even against the table *)
      Hashtbl.replace names w
        (Rewrite.fresh_name env.Depenv.tbl (var ^ string_of_int w))
    done;
    let name_of w = Hashtbl.find names w in
    let rename_stmt (s : Ast.stmt) : Ast.stmt =
      let use_name =
        match Hashtbl.find_opt webs.use_web s.Ast.sid with
        | Some w -> Some (name_of w)
        | None -> None
      in
      let def_name =
        match Hashtbl.find_opt webs.def_web s.Ast.sid with
        | Some w -> Some (name_of w)
        | None -> None
      in
      let ren_use e =
        match use_name with
        | Some n -> Ast.rename_in_expr ~old_name:var ~new_name:n e
        | None -> e
      in
      let node =
        match s.Ast.node with
        | Ast.Assign (Ast.Var v, rhs) when String.equal v var ->
          let lhs =
            match def_name with Some n -> Ast.Var n | None -> Ast.Var v
          in
          Ast.Assign (lhs, ren_use rhs)
        | Ast.Assign (lhs, rhs) -> Ast.Assign (ren_use lhs, ren_use rhs)
        | Ast.If (branches, els) ->
          Ast.If (List.map (fun (c, b) -> (ren_use c, b)) branches, els)
        | Ast.Do (hh, b) ->
          Ast.Do
            ( { hh with Ast.lo = ren_use hh.Ast.lo; hi = ren_use hh.Ast.hi;
                step = Option.map ren_use hh.Ast.step },
              b )
        | Ast.Call (n, args) -> Ast.Call (n, List.map ren_use args)
        | Ast.Print args -> Ast.Print (List.map ren_use args)
        | (Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop) as n -> n
      in
      { s with Ast.node }
    in
    let body' = Ast.map_stmts rename_stmt body in
    let loop' = { loop with Ast.node = Ast.Do (h, body') } in
    (* declare the fresh scalars with the original's type *)
    let typ = Symbol.typ_of env.Depenv.tbl var in
    let u =
      Hashtbl.fold
        (fun w n u ->
          if w = 0 then u
          else
            Rewrite.add_decl u
              { Ast.dname = n; dtyp = typ; dims = []; init = None;
                data_init = None; common_block = None })
        names u
    in
    Rewrite.replace_stmt u sid [ loop' ]
