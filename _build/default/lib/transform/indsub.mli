(** Induction-variable substitution.

    An auxiliary induction variable ([K = K + c] once per iteration)
    works sequentially but is a shared accumulator: running iterations
    in any other order computes the wrong [K] for each iteration, so a
    bare PARALLEL DO would be wrong.  Substitution removes the
    increment, rewrites every use as a closed form over the loop
    variable ([K₀ + c·(iteration index)]), and reproduces the final
    value after the loop — after which the loop is order independent
    and {!Parallelize} accepts it.

    Applicable when the variable is a recognized auxiliary induction
    of the loop and the step is a known constant. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> var:string -> Diagnosis.t
val apply : Depenv.t -> Ast.stmt_id -> var:string -> Ast.program_unit

(** The auxiliary induction variables of a loop that are read in the
    body (their presence makes a bare PARALLEL DO order dependent). *)
val needed : Depenv.t -> Ast.stmt -> string list
