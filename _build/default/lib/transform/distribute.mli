(** Loop distribution (fission).

    Partitions the loop body's top-level statements into strongly
    connected components of the dependence graph and emits one loop
    per component, in a topological order of the component graph —
    the Allen–Kennedy code-generation step.  Recurrences stay
    together in their own (sequential) loop while independent
    statements move into loops that can then be parallelized.

    Always safe; profitable when it yields more than one loop. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> Diagnosis.t

(** The partition [apply] would produce: each component as the list of
    top-level statement ids it contains, in emission order. *)
val partition : Depenv.t -> Ddg.t -> Ast.stmt_id -> Ast.stmt_id list list

val apply : Depenv.t -> Ddg.t -> Ast.stmt_id -> Ast.program_unit
