(** Loop normalization — rewrite [DO I = L, U, S] to run from 1 by 1.

    The classic enabling transformation: normalized loops give every
    downstream analysis unit-stride induction variables.  The body
    reads [L + (I−1)·S] instead of [I]; if the original induction
    variable's final value is observed after the loop, a compensating
    assignment reproduces it.  Safe whenever the step is a nonzero
    constant. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> Diagnosis.t
val apply : Depenv.t -> Ast.stmt_id -> Ast.program_unit
