(** Loop tiling — strip-mine the inner loop of a perfect pair and move
    the strip loop outward, giving blocked traversal of the iteration
    space (the memory-hierarchy transformation ParaScope's compilers
    used; Ped exposes it as one power-steering step).

    [tile (I, J) by B] yields [(JS, I, J')] with [J'] running over a
    [B]-wide strip.  Safety is the interchange safety of [(I, JS)] on
    the stripped candidate, which the diagnosis evaluates directly. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> block:int -> Diagnosis.t
val apply : Depenv.t -> Ddg.t -> Ast.stmt_id -> block:int -> Ast.program_unit
