(** Loop unrolling by a constant factor.

    Applicable when the trip count is a known constant divisible by
    the factor (Ped asks the user to strip-mine or peel first
    otherwise).  Each copy of the body reads the induction variable
    offset by a multiple of the step.  Always safe; profitable for
    instruction-level work per iteration, which the performance
    estimator reflects as reduced loop overhead. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> factor:int -> Diagnosis.t
val apply : Depenv.t -> Ast.stmt_id -> factor:int -> Ast.program_unit
