open Fortran_front
open Dependence

(* Map a (possibly nested) statement to its top-level ancestor within
   the loop body. *)
let top_level_of (body : Ast.stmt list) : Ast.stmt_id -> Ast.stmt_id option =
  let table = Hashtbl.create 32 in
  List.iter
    (fun (top : Ast.stmt) ->
      Ast.iter_stmts
        (fun s -> Hashtbl.replace table s.Ast.sid top.Ast.sid)
        [ top ])
    body;
  fun sid -> Hashtbl.find_opt table sid

(* Tarjan's strongly connected components, emitted in reverse
   topological order of the condensation (which is what we want to
   reverse for emission). *)
let sccs (nodes : int list) (succs : int -> int list) : int list list =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  (* Tarjan emits components in reverse topological order *)
  !components

let partition (env : Depenv.t) (ddg : Ddg.t) sid : Ast.stmt_id list list =
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> []
  | Some (loop, _, body) ->
    let top_of = top_level_of body in
    let tops = List.map (fun (s : Ast.stmt) -> s.Ast.sid) body in
    let edges = Hashtbl.create 16 in
    List.iter (fun t -> Hashtbl.replace edges t []) tops;
    let add_edge a b =
      let cur = Option.value ~default:[] (Hashtbl.find_opt edges a) in
      if not (List.mem b cur) then Hashtbl.replace edges a (b :: cur)
    in
    let deps = Ddg.deps_in_loop env ddg sid in
    List.iter
      (fun (d : Ddg.dep) ->
        if d.Ddg.kind <> Ddg.Control then
          match (top_of d.Ddg.src, top_of d.Ddg.dst) with
          | Some a, Some b when a <> b -> add_edge a b
          | Some a, Some b when a = b -> ()
          | _ -> ())
      deps;
    (* Statements sharing a private or auxiliary-induction scalar must
       stay in one loop: distribution would leave the later loop
       reading only the scalar's final value.  (Shared-unsafe scalars
       already carry dependence edges; reductions may split safely.) *)
    let classes =
      Scalar_analysis.Varclass.classify ~cfg:env.Depenv.cfg env.Depenv.ctx
        env.Depenv.liveness loop
    in
    let glue_vars =
      List.filter_map
        (fun (v, c) ->
          match c with
          | Scalar_analysis.Varclass.Private _ -> Some v
          | Scalar_analysis.Varclass.Induction { stride = Some _ } -> Some v
          | _ -> None)
        (Scalar_analysis.Varclass.all classes)
    in
    List.iter
      (fun v ->
        let touching =
          List.filter
            (fun (top : Ast.stmt) ->
              Ast.fold_stmts
                (fun acc s ->
                  acc
                  || List.mem v (Scalar_analysis.Defuse.uses env.Depenv.ctx s)
                  || List.mem v (Scalar_analysis.Defuse.may_defs env.Depenv.ctx s))
                false [ top ])
            body
          |> List.map (fun (s : Ast.stmt) -> s.Ast.sid)
        in
        match touching with
        | first :: rest ->
          List.iter (fun t -> add_edge first t; add_edge t first) rest
        | [] -> ())
      glue_vars;
    let succs v = Option.value ~default:[] (Hashtbl.find_opt edges v) in
    let comps = sccs tops succs in
    (* order statements within a component by source position *)
    let pos = Hashtbl.create 16 in
    List.iteri (fun i (s : Ast.stmt) -> Hashtbl.replace pos s.Ast.sid i) body;
    List.map
      (fun comp ->
        List.sort
          (fun a b ->
            compare (Hashtbl.find_opt pos a) (Hashtbl.find_opt pos b))
          comp)
      comps

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid : Diagnosis.t =
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (_, _, body) ->
    if List.length body < 2 then
      Diagnosis.inapplicable "loop body has fewer than two statements"
    else begin
      let has_exit =
        Ast.fold_stmts
          (fun acc s ->
            acc
            || match s.Ast.node with
               | Ast.Goto _ | Ast.Return | Ast.Stop -> true
               | _ -> false)
          false body
      in
      if has_exit then
        Diagnosis.inapplicable "body contains unstructured control flow"
      else begin
        let parts = partition env ddg sid in
        let n = List.length parts in
        let profitable = n > 1 in
        let notes =
          [ Printf.sprintf "distribution yields %d loop(s)" n ]
        in
        Diagnosis.make ~applicable:true ~safe:true ~profitable ~notes ()
      end
    end

let apply (env : Depenv.t) (ddg : Ddg.t) sid : Ast.program_unit =
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> invalid_arg "Distribute.apply: not a DO loop"
  | Some (loop, h, body) ->
    let parts = partition env ddg sid in
    let stmt_of =
      let tbl = Hashtbl.create 16 in
      List.iter (fun (s : Ast.stmt) -> Hashtbl.replace tbl s.Ast.sid s) body;
      fun sid -> Hashtbl.find tbl sid
    in
    let loops =
      List.mapi
        (fun i comp ->
          let comp_body = List.map stmt_of comp in
          if i = 0 then { loop with Ast.node = Ast.Do (h, comp_body) }
          else Ast.mk ~loc:loop.Ast.loc (Ast.Do (h, comp_body)))
        parts
    in
    Rewrite.replace_stmt env.Depenv.punit sid loops
