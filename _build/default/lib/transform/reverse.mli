(** Loop reversal — run the iterations backwards.

    Safe exactly when the loop carries no dependence (a carried
    dependence's endpoints would swap order).  Occasionally profitable
    for fusion or alignment; Ped offers it as a building block. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> Diagnosis.t
val apply : Ast.program_unit -> Ast.stmt_id -> Ast.program_unit
