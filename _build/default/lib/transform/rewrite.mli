(** AST surgery shared by all transformations.

    Rewrites preserve the statement ids of untouched statements so
    dependence-pane selections and markings survive a transformation;
    duplicated statements (unrolling, peeling) receive fresh ids. *)

open Fortran_front

(** [replace_stmt u sid repl] — replace the statement [sid] (wherever
    it nests) by the statements [repl].
    @raise Not_found if [sid] does not occur in [u]. *)
val replace_stmt :
  Ast.program_unit -> Ast.stmt_id -> Ast.stmt list -> Ast.program_unit

(** [update_stmt u sid f] — apply [f] to the statement [sid]. *)
val update_stmt :
  Ast.program_unit -> Ast.stmt_id -> (Ast.stmt -> Ast.stmt) ->
  Ast.program_unit

(** Deep copy with fresh statement ids (for duplicating bodies). *)
val refresh_sids : Ast.stmt list -> Ast.stmt list

(** [rename_var ~old_name ~new_name stmts] — rename a variable in all
    expressions of the statements (bodies included). *)
val rename_var :
  old_name:string -> new_name:string -> Ast.stmt list -> Ast.stmt list

(** [subst_in_stmts var e stmts] — substitute expression [e] for
    every [Var var] in the statements. *)
val subst_in_stmts : string -> Ast.expr -> Ast.stmt list -> Ast.stmt list

(** [add_decl u decl] — append a declaration (used by scalar
    expansion).  Replaces an existing declaration of the same name. *)
val add_decl : Ast.program_unit -> Ast.decl -> Ast.program_unit

(** [fresh_name tbl base] — a variable name not present in the symbol
    table, derived from [base]. *)
val fresh_name : Fortran_front.Symbol.table -> string -> string

(** The DO statement with this id, if any. *)
val find_do :
  Ast.program_unit -> Ast.stmt_id -> (Ast.stmt * Ast.do_header * Ast.stmt list) option
