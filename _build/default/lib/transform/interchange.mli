(** Loop interchange — swap the headers of a perfectly nested pair.

    Applicable to a DO whose body is exactly one DO, with bounds
    independent of each other's induction variables (rectangular
    nests).  Safe unless some dependence has direction [(<, >)] at the
    two levels — interchanging would run its endpoints in the wrong
    order.  Profitable when it moves parallelism outward (the inner
    loop is parallelizable, the outer is not), the classic matmul
    granularity win. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> Diagnosis.t

(** [apply u outer_sid] — swap the perfect pair rooted at [outer_sid].
    The outer statement keeps its id (now holding the old inner
    header), so selections survive. *)
val apply : Ast.program_unit -> Ast.stmt_id -> Ast.program_unit
