open Fortran_front
open Scalar_analysis
open Dependence

let aux_of (env : Depenv.t) (loop : Ast.stmt) var =
  List.find_opt
    (fun (v, _, _) -> String.equal v var)
    (Varclass.aux_inductions env.Depenv.ctx loop)

(* Auxiliary inductions whose value is read by some statement other
   than their own increment. *)
let needed (env : Depenv.t) (loop : Ast.stmt) : string list =
  match loop.Ast.node with
  | Ast.Do (_, body) ->
    Varclass.aux_inductions env.Depenv.ctx loop
    |> List.filter_map (fun (v, _, inc_sid) ->
           let read_elsewhere =
             Ast.fold_stmts
               (fun acc s ->
                 acc
                 || (s.Ast.sid <> inc_sid
                    && List.mem v (Defuse.uses env.Depenv.ctx s)))
               false body
           in
           if read_elsewhere then Some v else None)
  | _ -> []

let step_const (env : Depenv.t) sid (h : Ast.do_header) =
  match h.Ast.step with
  | None -> Some 1
  | Some e -> Depenv.int_at env sid e

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid ~var : Diagnosis.t =
  ignore ddg;
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (loop, h, _) -> (
    match aux_of env loop var with
    | None ->
      Diagnosis.inapplicable
        (var ^ " is not an auxiliary induction variable of this loop")
    | Some (_, stride, _) -> (
      match step_const env sid h with
      | None | Some 0 -> Diagnosis.inapplicable "loop step is not a known constant"
      | Some _ ->
        Diagnosis.make ~applicable:true ~safe:true ~profitable:true
          ~notes:
            [ Printf.sprintf
                "%s = %s + %d·iteration: closed form removes the accumulator"
                var var stride ]
          ()))

let apply (env : Depenv.t) sid ~var : Ast.program_unit =
  let u = env.Depenv.punit in
  match Rewrite.find_do u sid with
  | None -> invalid_arg "Indsub.apply: not a DO loop"
  | Some (loop, h, body) ->
    let stride, inc_sid =
      match aux_of env loop var with
      | Some (_, s, i) -> (s, i)
      | None -> invalid_arg "Indsub.apply: not an auxiliary induction"
    in
    let st =
      match step_const env sid h with
      | Some s when s <> 0 -> s
      | _ -> invalid_arg "Indsub.apply: unknown step"
    in
    (* iteration index (0-based): (I − lo) / step *)
    let iter_ix =
      let diff = Ast.simplify (Ast.sub (Ast.Var h.Ast.dvar) h.Ast.lo) in
      if st = 1 then diff else Ast.Bin (Ast.Div, diff, Ast.Int st)
    in
    let value_before = (* K₀ + stride·ix *)
      Ast.simplify (Ast.add (Ast.Var var) (Ast.mul (Ast.Int stride) iter_ix))
    in
    let value_after =
      Ast.simplify
        (Ast.add (Ast.Var var)
           (Ast.mul (Ast.Int stride) (Ast.add iter_ix (Ast.Int 1))))
    in
    (* positions: uses textually after the increment see one more step *)
    let flat = Loopnest.body_stmts env.Depenv.nest sid in
    let pos_of target =
      let rec go i = function
        | [] -> None
        | (s : Ast.stmt) :: rest ->
          if s.Ast.sid = target then Some i else go (i + 1) rest
      in
      go 0 flat
    in
    let inc_pos = Option.value ~default:0 (pos_of inc_sid) in
    let rewrite (s : Ast.stmt) : Ast.stmt =
      if s.Ast.sid = inc_sid then s (* removed below *)
      else
        let after =
          match pos_of s.Ast.sid with Some p -> p > inc_pos | None -> false
        in
        let repl = if after then value_after else value_before in
        let f = Ast.subst_var var repl in
        let node =
          match s.Ast.node with
          | Ast.Assign (lhs, rhs) -> Ast.Assign (f lhs, f rhs)
          | Ast.If (branches, els) ->
            Ast.If (List.map (fun (c, b) -> (f c, b)) branches, els)
          | Ast.Do (hh, b) ->
            Ast.Do
              ( { hh with Ast.lo = f hh.Ast.lo; hi = f hh.Ast.hi;
                  step = Option.map f hh.Ast.step },
                b )
          | Ast.Call (n, args) -> Ast.Call (n, List.map f args)
          | Ast.Print args -> Ast.Print (List.map f args)
          | (Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop) as n -> n
        in
        { s with Ast.node }
    in
    let body' =
      Ast.map_stmts rewrite body
      |> List.concat_map (fun (s : Ast.stmt) ->
             if s.Ast.sid = inc_sid then [] else [ s ])
    in
    let loop' = { loop with Ast.node = Ast.Do (h, body') } in
    (* final value: K := K + stride·trip, always (K is must-defined by
       the original loop whenever it runs; with a constant-safe trip
       expression the assignment is exact for zero-trip loops too) *)
    let trip_expr =
      match
        (Depenv.int_at env sid h.Ast.lo, Depenv.int_at env sid h.Ast.hi)
      with
      | Some lo, Some hi -> Ast.Int (max 0 (((hi - lo) + st) / st))
      | _ ->
        Ast.Index
          ( "MAX",
            [ Ast.Int 0;
              Ast.Bin
                ( Ast.Div,
                  Ast.simplify
                    (Ast.add (Ast.sub h.Ast.hi h.Ast.lo) (Ast.Int st)),
                  Ast.Int st ) ] )
    in
    let fixup =
      Ast.mk
        (Ast.Assign
           ( Ast.Var var,
             Ast.simplify
               (Ast.add (Ast.Var var) (Ast.mul (Ast.Int stride) trip_expr)) ))
    in
    Rewrite.replace_stmt u sid [ loop'; fixup ]
