open Fortran_front
open Scalar_analysis
open Dependence

let classify_var (env : Depenv.t) loop var =
  let classes =
    Varclass.classify ~cfg:env.Depenv.cfg env.Depenv.ctx env.Depenv.liveness
      loop
  in
  Varclass.lookup classes var

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid ~var : Diagnosis.t =
  ignore ddg;
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (loop, h, _) -> (
    match Symbol.lookup env.Depenv.tbl var with
    | Some { kind = Symbol.Scalar; _ } -> (
      let trip =
        match Depenv.int_at env sid (Ast.sub h.Ast.hi h.Ast.lo) with
        | Some d -> Some (d + 1)
        | None -> None
      in
      match classify_var env loop var with
      | Some (Varclass.Private { needs_last_value }) -> (
        match trip with
        | None ->
          Diagnosis.inapplicable "trip count is not a known constant"
        | Some t when t <= 0 -> Diagnosis.inapplicable "empty loop"
        | Some t ->
          (* last-value copy-out reads the final iteration's element,
             which is only right if that iteration assigns the scalar
             unconditionally *)
          let unconditional =
            match Rewrite.find_do env.Depenv.punit sid with
            | Some (_, _, body) ->
              List.exists
                (fun (s : Ast.stmt) ->
                  match s.Ast.node with
                  | Ast.Assign (Ast.Var v, _) -> String.equal v var
                  | _ -> false)
                body
            | None -> false
          in
          let safe = (not needs_last_value) || unconditional in
          Diagnosis.make ~applicable:true ~safe ~profitable:true
            ~notes:
              ([ Printf.sprintf "expands %s into an array of %d" var t ]
              @ (if needs_last_value then [ "last value will be copied out" ]
                 else [ "no last value needed" ])
              @
              if not safe then
                [ "conditional assignment: last value would be wrong" ]
              else [])
            ())
      | Some cls ->
        Diagnosis.inapplicable
          (Printf.sprintf "%s is %s, not a privatizable scalar" var
             (Varclass.classification_to_string cls))
      | None ->
        Diagnosis.inapplicable
          (Printf.sprintf "%s does not occur in the loop" var))
    | Some _ -> Diagnosis.inapplicable (var ^ " is not a scalar")
    | None -> Diagnosis.inapplicable (var ^ " is not declared"))

let apply (env : Depenv.t) sid ~var : Ast.program_unit =
  let u = env.Depenv.punit in
  match Rewrite.find_do u sid with
  | None -> invalid_arg "Scalar_expand.apply: not a DO loop"
  | Some (loop, h, body) ->
    let hi_const =
      match Depenv.int_at env sid h.Ast.hi with
      | Some n -> n
      | None -> invalid_arg "Scalar_expand.apply: unknown bound"
    in
    let lo_const =
      match Depenv.int_at env sid h.Ast.lo with
      | Some n -> n
      | None -> invalid_arg "Scalar_expand.apply: unknown bound"
    in
    let arr = Rewrite.fresh_name env.Depenv.tbl (var ^ "X") in
    let elem = Ast.Index (arr, [ Ast.Var h.Ast.dvar ]) in
    (* the substitution rewrites assignment left-hand sides too *)
    let body' = Rewrite.subst_in_stmts var elem body in
    let loop' = { loop with Ast.node = Ast.Do (h, body') } in
    let needs_last =
      List.mem var (Liveness.live_after env.Depenv.liveness env.Depenv.cfg sid)
    in
    let copy_out =
      if needs_last then
        [ Ast.mk (Ast.Assign (Ast.Var var, Ast.Index (arr, [ h.Ast.hi ]))) ]
      else []
    in
    let typ = Symbol.typ_of env.Depenv.tbl var in
    let u =
      Rewrite.add_decl u
        {
          Ast.dname = arr;
          dtyp = typ;
          dims = [ (Ast.Int lo_const, Ast.Int hi_const) ];
          init = None;
          data_init = None;
          common_block = None;
        }
    in
    Rewrite.replace_stmt u sid (loop' :: copy_out)
