(** Loop peeling — split the first or last iteration out of the loop.

    Used to remove boundary-case dependences (wrap-around uses of the
    first or last element) so the remaining loop parallelizes.  Safe
    by construction; when the trip count is not provably positive the
    peeled copy is guarded by an IF. *)

open Fortran_front
open Dependence

type which = First | Last

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> which:which -> Diagnosis.t
val apply : Depenv.t -> Ast.stmt_id -> which:which -> Ast.program_unit
