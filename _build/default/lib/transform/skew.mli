(** Loop skewing — shift the inner iteration space by a multiple of
    the outer induction variable.

    Rewrites the inner loop [DO J = lo, hi] of a perfect nest as
    [DO J = lo + f·I, hi + f·I] with every use of [J] in the body
    replaced by [J − f·I].  A pure change of coordinates, so always
    safe; profitable when it converts a [(<, >)]-direction dependence
    (which blocks interchange) into [(<, <)] — the wavefront recipe:
    skew, interchange, parallelize the new inner loop. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> factor:int -> Diagnosis.t
val apply : Ast.program_unit -> Ast.stmt_id -> factor:int -> Ast.program_unit
