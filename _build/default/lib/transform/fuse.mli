(** Loop fusion — merge two adjacent conformable loops.

    Applicable when the two DO statements are adjacent siblings with
    structurally identical bounds and step.  Safety is decided by
    building the fused candidate and re-analyzing it: fusion is unsafe
    exactly when the fused loop carries a dependence from a statement
    of the second body to a statement of the first (a
    fusion-preventing dependence — it would make an iteration of the
    second loop precede work of the first that originally ran before
    it).  Profitable as larger parallel grain when both loops were
    parallelizable. *)

open Fortran_front
open Dependence

val diagnose :
  Depenv.t -> Ddg.t -> Ast.stmt_id -> Ast.stmt_id -> Diagnosis.t

(** [apply u sid1 sid2] — the fused unit; the first loop's statement
    id and induction variable survive (the second body is renamed to
    the first induction variable if they differ). *)
val apply : Ast.program_unit -> Ast.stmt_id -> Ast.stmt_id -> Ast.program_unit
