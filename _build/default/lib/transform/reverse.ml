open Fortran_front
open Scalar_analysis
open Dependence

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid : Diagnosis.t =
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (loop, h, body) ->
    let carried = Ddg.blocking env ddg sid in
    (* any scalar written by the loop (the induction variable included)
       whose value is read afterwards would end with a different value *)
    let live_after = Liveness.live_after env.Depenv.liveness env.Depenv.cfg sid in
    let written =
      h.Ast.dvar
      :: Ast.fold_stmts
           (fun acc s -> Defuse.scalar_writes env.Depenv.ctx s @ acc)
           [] body
    in
    let escapees =
      List.sort_uniq String.compare
        (List.filter (fun v -> List.mem v live_after) written)
    in
    (* auxiliary induction accumulators pair values with iterations by
       execution order: reversal re-pairs them *)
    let aux = Indsub.needed env loop in
    let safe = carried = [] && escapees = [] && aux = [] in
    let notes =
      List.map (fun d -> Format.asprintf "carried %a" Ddg.pp_dep d) carried
      @ List.map
          (fun v -> Printf.sprintf "%s's final value is observed after the loop" v)
          escapees
      @ List.map
          (fun v ->
            Printf.sprintf
              "%s is an induction accumulator: substitute it first (indsub)" v)
          aux
    in
    Diagnosis.make ~applicable:true ~safe ~profitable:false ~notes ()

let apply (u : Ast.program_unit) sid : Ast.program_unit =
  Rewrite.update_stmt u sid (fun s ->
      match s.Ast.node with
      | Ast.Do (h, body) ->
        let step = Option.value ~default:(Ast.Int 1) h.Ast.step in
        let h' =
          {
            h with
            Ast.lo = h.Ast.hi;
            hi = h.Ast.lo;
            step = Some (Ast.simplify (Ast.Un (Ast.Neg, step)));
          }
        in
        { s with Ast.node = Ast.Do (h', body) }
      | _ -> s)
