open Fortran_front

let rec replace_in_list sid repl (stmts : Ast.stmt list) : Ast.stmt list * bool
    =
  match stmts with
  | [] -> ([], false)
  | s :: rest ->
    if s.Ast.sid = sid then (repl @ rest, true)
    else begin
      let s', hit = replace_in_stmt sid repl s in
      if hit then (s' :: rest, true)
      else
        let rest', hit = replace_in_list sid repl rest in
        (s :: rest', hit)
    end

and replace_in_stmt sid repl (s : Ast.stmt) : Ast.stmt * bool =
  match s.Ast.node with
  | Ast.If (branches, els) ->
    let hit = ref false in
    let branches' =
      List.map
        (fun (c, body) ->
          if !hit then (c, body)
          else
            let body', h = replace_in_list sid repl body in
            if h then hit := true;
            (c, body'))
        branches
    in
    let els' =
      if !hit then els
      else begin
        let els', h = replace_in_list sid repl els in
        if h then hit := true;
        els'
      end
    in
    ({ s with Ast.node = Ast.If (branches', els') }, !hit)
  | Ast.Do (h, body) ->
    let body', hit = replace_in_list sid repl body in
    ({ s with Ast.node = Ast.Do (h, body') }, hit)
  | Ast.Assign _ | Ast.Call _ | Ast.Goto _ | Ast.Continue | Ast.Return
  | Ast.Stop | Ast.Print _ -> (s, false)

let replace_stmt (u : Ast.program_unit) sid repl : Ast.program_unit =
  let body, hit = replace_in_list sid repl u.Ast.body in
  if not hit then raise Not_found;
  { u with Ast.body = body }

let update_stmt u sid f =
  let found = ref None in
  Ast.iter_stmts
    (fun s -> if s.Ast.sid = sid then found := Some s)
    u.Ast.body;
  match !found with
  | None -> raise Not_found
  | Some s -> replace_stmt u sid [ f s ]

let rec refresh_sids (stmts : Ast.stmt list) : Ast.stmt list =
  List.map
    (fun (s : Ast.stmt) ->
      let node =
        match s.Ast.node with
        | Ast.If (branches, els) ->
          Ast.If
            ( List.map (fun (c, b) -> (c, refresh_sids b)) branches,
              refresh_sids els )
        | Ast.Do (h, body) -> Ast.Do (h, refresh_sids body)
        | (Ast.Assign _ | Ast.Call _ | Ast.Goto _ | Ast.Continue | Ast.Return
          | Ast.Stop | Ast.Print _) as n -> n
      in
      (* drop labels on copies: duplicate labels would be ambiguous *)
      { s with Ast.sid = Ast.fresh_sid (); label = None; node })
    stmts

let map_exprs_in_stmts (f : Ast.expr -> Ast.expr) (stmts : Ast.stmt list) :
    Ast.stmt list =
  Ast.map_stmts
    (fun (s : Ast.stmt) ->
      let node =
        match s.Ast.node with
        | Ast.Assign (lhs, rhs) -> Ast.Assign (f lhs, f rhs)
        | Ast.If (branches, els) ->
          Ast.If (List.map (fun (c, b) -> (f c, b)) branches, els)
        | Ast.Do (h, body) ->
          Ast.Do
            ( { h with Ast.lo = f h.Ast.lo; hi = f h.Ast.hi;
                step = Option.map f h.Ast.step },
              body )
        | Ast.Call (name, args) -> Ast.Call (name, List.map f args)
        | Ast.Print args -> Ast.Print (List.map f args)
        | (Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop) as n -> n
      in
      { s with Ast.node })
    stmts

let rename_var ~old_name ~new_name stmts =
  Ast.map_stmts
    (fun (s : Ast.stmt) ->
      let f = Ast.rename_in_expr ~old_name ~new_name in
      let node =
        match s.Ast.node with
        | Ast.Assign (lhs, rhs) -> Ast.Assign (f lhs, f rhs)
        | Ast.If (branches, els) ->
          Ast.If (List.map (fun (c, b) -> (f c, b)) branches, els)
        | Ast.Do (h, body) ->
          let dvar =
            if String.equal h.Ast.dvar old_name then new_name else h.Ast.dvar
          in
          Ast.Do
            ( { h with Ast.dvar; lo = f h.Ast.lo; hi = f h.Ast.hi;
                step = Option.map f h.Ast.step },
              body )
        | Ast.Call (name, args) -> Ast.Call (name, List.map f args)
        | Ast.Print args -> Ast.Print (List.map f args)
        | (Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop) as n -> n
      in
      { s with Ast.node })
    stmts

let subst_in_stmts var e stmts =
  map_exprs_in_stmts (Ast.subst_var var e) stmts

let add_decl (u : Ast.program_unit) (d : Ast.decl) : Ast.program_unit =
  let others =
    List.filter (fun (x : Ast.decl) -> x.Ast.dname <> d.Ast.dname) u.Ast.decls
  in
  { u with Ast.decls = others @ [ d ] }

let fresh_name tbl base =
  let exists n = Fortran_front.Symbol.lookup tbl n <> None in
  if not (exists base) then base
  else
    let rec go i =
      let n = Printf.sprintf "%s%d" base i in
      if exists n then go (i + 1) else n
    in
    go 1

let find_do (u : Ast.program_unit) sid =
  match Ast.find_stmt sid u.Ast.body with
  | Some ({ Ast.node = Ast.Do (h, body); _ } as s) -> Some (s, h, body)
  | Some _ | None -> None
