(** Scalar renaming — give each disjoint def-use web of a temporary
    its own name.

    Programmers reuse one temporary for unrelated values; the storage
    reuse manufactures anti and output dependences.  When the
    temporary's occurrences in a loop body split into several
    independent def-use webs, renaming all but the first web removes
    those dependences (often making each new scalar private).

    Applicable when the scalar has at least two webs in the loop body,
    every use is reached only by definitions inside the body, the
    value does not survive the loop, and the scalar is not passed to a
    CALL.  Renaming is then semantics-preserving by construction. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> var:string -> Diagnosis.t
val apply : Depenv.t -> Ast.stmt_id -> var:string -> Ast.program_unit
