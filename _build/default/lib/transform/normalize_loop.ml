open Fortran_front
open Dependence

let step_const (env : Depenv.t) sid (h : Ast.do_header) =
  match h.Ast.step with
  | None -> Some 1
  | Some e -> Depenv.int_at env sid e

let already_normal (h : Ast.do_header) =
  Ast.expr_equal h.Ast.lo (Ast.Int 1)
  && (match h.Ast.step with None | Some (Ast.Int 1) -> true | Some _ -> false)

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid : Diagnosis.t =
  ignore ddg;
  match Rewrite.find_do env.Depenv.punit sid with
  | None -> Diagnosis.inapplicable "not a DO loop"
  | Some (_, h, body) -> (
    if already_normal h then
      Diagnosis.inapplicable "loop is already normalized"
    else
      match step_const env sid h with
      | None | Some 0 -> Diagnosis.inapplicable "step is not a known constant"
      | Some _ ->
        (* the induction variable must not be assigned in the body *)
        let iv_assigned =
          Ast.fold_stmts
            (fun acc s ->
              acc
              || match s.Ast.node with
                 | Ast.Assign (Ast.Var v, _) -> String.equal v h.Ast.dvar
                 | _ -> false)
            false body
        in
        if iv_assigned then
          Diagnosis.inapplicable "induction variable assigned in the body"
        else if
          not
            (Scalar_analysis.Symbolic.expr_invariant_in env.Depenv.ctx
               (Option.get (Depenv.stmt env sid))
               h.Ast.lo)
        then
          Diagnosis.inapplicable
            "lower bound changes inside the loop: cannot substitute it"
        else
          Diagnosis.make ~applicable:true ~safe:true ~profitable:false
            ~notes:[ "normalization gives a unit-stride induction variable" ]
            ())

let apply (env : Depenv.t) sid : Ast.program_unit =
  let u = env.Depenv.punit in
  match Rewrite.find_do u sid with
  | None -> invalid_arg "Normalize_loop.apply: not a DO loop"
  | Some (loop, h, body) ->
    let st =
      match step_const env sid h with
      | Some s when s <> 0 -> s
      | _ -> invalid_arg "Normalize_loop.apply: unknown step"
    in
    (* I := lo + (I' − 1)·step, with I' the same variable renumbered *)
    let iv = h.Ast.dvar in
    let original_value =
      Ast.simplify
        (Ast.add h.Ast.lo
           (Ast.mul (Ast.Int st) (Ast.sub (Ast.Var iv) (Ast.Int 1))))
    in
    let body' = Rewrite.subst_in_stmts iv original_value body in
    (* trip count: (U − L + S) / S computed symbolically when constant,
       kept as an expression otherwise *)
    let trip_expr =
      match
        ( Depenv.int_at env sid h.Ast.lo,
          Depenv.int_at env sid h.Ast.hi )
      with
      | Some lo, Some hi -> Ast.Int (max 0 (((hi - lo) + st) / st))
      | _ ->
        Ast.simplify
          (Ast.Bin
             ( Ast.Div,
               Ast.add (Ast.sub h.Ast.hi h.Ast.lo) (Ast.Int st),
               Ast.Int st ))
    in
    let h' =
      { h with Ast.lo = Ast.Int 1; hi = trip_expr; step = None }
    in
    let loop' = { loop with Ast.node = Ast.Do (h', body') } in
    (* the original variable's final value, when observed afterwards *)
    let fixup =
      if
        List.mem iv
          (Scalar_analysis.Liveness.live_after env.Depenv.liveness
             env.Depenv.cfg sid)
      then
        [ Ast.mk
            (Ast.Assign
               ( Ast.Var iv,
                 Ast.simplify
                   (Ast.add h.Ast.lo (Ast.mul (Ast.Int st) trip_expr)) )) ]
      else []
    in
    Rewrite.replace_stmt u sid (loop' :: fixup)
