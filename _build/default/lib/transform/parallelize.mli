(** Loop parallelization — turn a DO into a PARALLEL DO.

    Safe when the loop carries no flow/anti/output dependence, after
    discounting dependences the user rejected and variables the user
    privatized.  Profitability asks whether the loop has enough
    iterations to pay the fork/join overhead. *)

open Fortran_front
open Dependence

(** Scalars classified private-with-last-value in the loop: their final
    value is observed after the loop, so parallel execution needs a
    copy-out the target model does not provide — parallelization (and
    reversal) must treat them as blockers unless the user privatizes
    or the editor scalar-expands them first. *)
val last_value_escapees : Depenv.t -> Ast.stmt -> string list

val diagnose :
  ?ignore_deps:int list ->
  ?user_private:string list ->
  Depenv.t -> Ddg.t -> Ast.stmt_id -> Diagnosis.t

(** Flip the parallel bit (unconditionally; the editor checks the
    diagnosis first). *)
val apply : Ast.program_unit -> Ast.stmt_id -> Ast.program_unit

(** The inverse: back to a sequential DO.  Always safe. *)
val apply_sequentialize : Ast.program_unit -> Ast.stmt_id -> Ast.program_unit
