(** Statement interchange — swap two adjacent statements.

    Safe when no loop-independent dependence connects them in either
    direction (loop-carried dependences are unaffected by
    intra-iteration order).  Ped offers it for enabling distribution
    and fusion alignments. *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> Ast.stmt_id -> Diagnosis.t
val apply : Ast.program_unit -> Ast.stmt_id -> Ast.stmt_id -> Ast.program_unit
