lib/transform/rewrite.mli: Ast Fortran_front
