lib/transform/distribute.ml: Ast Ddg Dependence Depenv Diagnosis Fortran_front Hashtbl List Option Printf Rewrite Scalar_analysis
