lib/transform/rename_scalar.ml: Ast Cfg Ddg Defuse Dependence Depenv Diagnosis Fortran_front Hashtbl List Liveness Option Printf Reaching Rewrite Scalar_analysis String Symbol
