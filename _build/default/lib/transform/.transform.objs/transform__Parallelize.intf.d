lib/transform/parallelize.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
