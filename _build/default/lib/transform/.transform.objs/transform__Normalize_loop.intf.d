lib/transform/normalize_loop.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
