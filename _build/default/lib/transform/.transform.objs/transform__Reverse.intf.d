lib/transform/reverse.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
