lib/transform/tile.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
