lib/transform/skew.ml: Ast Ddg Dependence Depenv Diagnosis Fortran_front Interchange Rewrite
