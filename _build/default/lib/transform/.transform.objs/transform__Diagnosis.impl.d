lib/transform/diagnosis.ml: Format List
