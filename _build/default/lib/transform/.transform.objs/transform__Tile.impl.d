lib/transform/tile.ml: Ast Ddg Dependence Depenv Diagnosis Fortran_front Interchange Rewrite Strip_mine
