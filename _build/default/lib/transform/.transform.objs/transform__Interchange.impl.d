lib/transform/interchange.ml: Array Ast Ddg Dependence Depenv Diagnosis Dtest Format Fortran_front List Loopnest Option Rewrite Scalar_analysis String
