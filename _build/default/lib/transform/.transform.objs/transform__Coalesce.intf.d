lib/transform/coalesce.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
