lib/transform/rewrite.ml: Ast Fortran_front List Option Printf String
