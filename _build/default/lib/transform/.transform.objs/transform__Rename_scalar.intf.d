lib/transform/rename_scalar.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
