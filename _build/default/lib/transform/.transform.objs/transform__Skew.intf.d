lib/transform/skew.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
