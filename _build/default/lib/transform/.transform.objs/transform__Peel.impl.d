lib/transform/peel.ml: Ast Ddg Dependence Depenv Diagnosis Fortran_front Option Rewrite
