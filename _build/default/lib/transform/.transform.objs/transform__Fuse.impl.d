lib/transform/fuse.ml: Ast Ddg Dependence Depenv Diagnosis Format Fortran_front List Printf Rewrite Scalar_analysis String
