lib/transform/coalesce.ml: Ast Ddg Dependence Depenv Diagnosis Fortran_front List Perf Printf Rewrite Scalar_analysis String
