lib/transform/scalar_expand.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
