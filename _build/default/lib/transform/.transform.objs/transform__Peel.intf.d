lib/transform/peel.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
