lib/transform/stmt_interchange.ml: Ast Ddg Dependence Depenv Diagnosis Format Fortran_front List Rewrite
