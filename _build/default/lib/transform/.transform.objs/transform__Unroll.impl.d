lib/transform/unroll.ml: Ast Ddg Dependence Depenv Diagnosis Fortran_front Fun List Printf Rewrite String
