lib/transform/distribute.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
