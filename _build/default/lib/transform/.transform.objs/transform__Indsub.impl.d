lib/transform/indsub.ml: Ast Ddg Defuse Dependence Depenv Diagnosis Fortran_front List Loopnest Option Printf Rewrite Scalar_analysis String Varclass
