lib/transform/catalog.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
