lib/transform/strip_mine.ml: Ast Ddg Dependence Depenv Diagnosis Fortran_front Option Rewrite
