lib/transform/strip_mine.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
