lib/transform/normalize_loop.ml: Ast Ddg Dependence Depenv Diagnosis Fortran_front List Option Rewrite Scalar_analysis String
