lib/transform/reverse.ml: Ast Ddg Defuse Dependence Depenv Diagnosis Format Fortran_front Indsub List Liveness Option Printf Rewrite Scalar_analysis String
