lib/transform/parallelize.ml: Ast Ddg Dependence Depenv Diagnosis Format Fortran_front Indsub List Perf Printf Rewrite Scalar_analysis Varclass
