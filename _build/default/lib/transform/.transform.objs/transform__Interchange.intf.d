lib/transform/interchange.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
