lib/transform/indsub.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
