lib/transform/diagnosis.mli: Format
