lib/transform/unroll.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
