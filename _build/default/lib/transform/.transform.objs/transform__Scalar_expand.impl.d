lib/transform/scalar_expand.ml: Ast Ddg Dependence Depenv Diagnosis Fortran_front List Liveness Printf Rewrite Scalar_analysis String Symbol Varclass
