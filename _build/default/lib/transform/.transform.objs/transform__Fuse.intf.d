lib/transform/fuse.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
