lib/transform/stmt_interchange.mli: Ast Ddg Dependence Depenv Diagnosis Fortran_front
