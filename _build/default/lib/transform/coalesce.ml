open Fortran_front
open Dependence

let candidate (env : Depenv.t) sid =
  match Rewrite.find_do env.Depenv.punit sid with
  | Some (outer, h1, [ ({ Ast.node = Ast.Do (h2, body); _ } as inner) ]) -> (
    let unit_step h =
      match h.Ast.step with None | Some (Ast.Int 1) -> true | Some _ -> false
    in
    let const e = Depenv.int_at env sid e in
    match (const h1.Ast.lo, const h1.Ast.hi, const h2.Ast.lo, const h2.Ast.hi)
    with
    | Some lo1, Some hi1, Some lo2, Some hi2
      when unit_step h1 && unit_step h2 && hi1 >= lo1 && hi2 >= lo2 ->
      Some (outer, h1, inner, h2, body, lo1, hi1, lo2, hi2)
    | _ -> None)
  | Some _ | None -> None

let iv_assigned body iv =
  Ast.fold_stmts
    (fun acc s ->
      acc
      || match s.Ast.node with
         | Ast.Assign (Ast.Var v, _) -> String.equal v iv
         | _ -> false)
    false body

let diagnose (env : Depenv.t) (ddg : Ddg.t) sid : Diagnosis.t =
  ignore ddg;
  match candidate env sid with
  | None ->
    Diagnosis.inapplicable
      "needs a perfect rectangular nest with unit steps and constant bounds"
  | Some (_, h1, _, h2, body, lo1, hi1, lo2, hi2) ->
    if iv_assigned body h1.Ast.dvar || iv_assigned body h2.Ast.dvar then
      Diagnosis.inapplicable "an induction variable is assigned in the body"
    else begin
      let n = hi1 - lo1 + 1 and m = hi2 - lo2 + 1 in
      let machine = Perf.Machine.default in
      (* profitable when neither loop alone has enough iterations to
         fill the machine but the product does *)
      let p = machine.Perf.Machine.processors in
      let profitable = n < p && m < p && n * m >= p in
      Diagnosis.make ~applicable:true ~safe:true ~profitable
        ~notes:
          [ Printf.sprintf "%d × %d iterations coalesce into %d" n m (n * m) ]
        ()
    end

let apply (env : Depenv.t) sid : Ast.program_unit =
  let u = env.Depenv.punit in
  match candidate env sid with
  | None -> invalid_arg "Coalesce.apply: unsupported nest"
  | Some (outer, h1, _inner, h2, body, lo1, hi1, lo2, hi2) ->
    let n = hi1 - lo1 + 1 and m = hi2 - lo2 + 1 in
    let tvar = Rewrite.fresh_name env.Depenv.tbl (h1.Ast.dvar ^ "T") in
    let t0 = Ast.sub (Ast.Var tvar) (Ast.Int 1) in
    let i_expr =
      Ast.simplify
        (Ast.add (Ast.Bin (Ast.Div, t0, Ast.Int m)) (Ast.Int lo1))
    in
    let j_expr =
      Ast.simplify
        (Ast.add (Ast.Index ("MOD", [ t0; Ast.Int m ])) (Ast.Int lo2))
    in
    let body' =
      Rewrite.subst_in_stmts h1.Ast.dvar i_expr
        (Rewrite.subst_in_stmts h2.Ast.dvar j_expr body)
    in
    let header =
      { Ast.dvar = tvar; lo = Ast.Int 1; hi = Ast.Int (n * m); step = None;
        parallel = false }
    in
    let loop' = { outer with Ast.node = Ast.Do (header, body') } in
    (* F77 final values of the vanished induction variables, when
       observed after the nest *)
    let live =
      Scalar_analysis.Liveness.live_after env.Depenv.liveness env.Depenv.cfg
        sid
    in
    let fixups =
      (if List.mem h1.Ast.dvar live then
         [ Ast.mk (Ast.Assign (Ast.Var h1.Ast.dvar, Ast.Int (lo1 + n))) ]
       else [])
      @
      if List.mem h2.Ast.dvar live then
        [ Ast.mk (Ast.Assign (Ast.Var h2.Ast.dvar, Ast.Int (lo2 + m))) ]
      else []
    in
    Rewrite.replace_stmt u sid (loop' :: fixups)
