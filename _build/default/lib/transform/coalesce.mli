(** Loop coalescing — collapse a perfect nest into a single loop.

    [DO I = 1,N (DO J = 1,M body)] becomes [DO T = 1, N·M] with
    [I = (T−1)/M + 1] and [J = MOD(T−1, M) + 1] substituted into the
    body.  A pure reindexing of the same iteration sequence, so always
    safe; profitable when the product loop gives the scheduler more
    parallel iterations than either loop alone (short outer loops on
    many processors).

    Applicable to perfect rectangular nests with unit steps and
    constant bounds (the index reconstruction needs a constant inner
    extent). *)

open Fortran_front
open Dependence

val diagnose : Depenv.t -> Ddg.t -> Ast.stmt_id -> Diagnosis.t
val apply : Depenv.t -> Ast.stmt_id -> Ast.program_unit
