type t = {
  applicable : bool;
  safe : bool;
  profitable : bool;
  notes : string list;
}

let make ?(applicable = true) ?(safe = true) ?(profitable = true)
    ?(notes = []) () =
  { applicable; safe; profitable; notes }

let inapplicable reason =
  { applicable = false; safe = false; profitable = false; notes = [ reason ] }

let note t msg = { t with notes = msg :: t.notes }

let pp ppf t =
  Format.fprintf ppf "applicable: %b, safe: %b, profitable: %b" t.applicable
    t.safe t.profitable;
  List.iter (fun n -> Format.fprintf ppf "@.  - %s" n) (List.rev t.notes)

let to_string t = Format.asprintf "%a" pp t

let ok t = t.applicable && t.safe
