type schedule = Block | Cyclic

type t = {
  name : string;
  processors : int;
  schedule : schedule;
  flop_cost : float;
  mem_cost : float;
  intrinsic_cost : float;
  loop_overhead : float;
  fork_join : float;
  call_overhead : float;
  reduction_combine : float;
}

let default =
  {
    name = "abstract-mp8";
    processors = 8;
    schedule = Block;
    flop_cost = 1.0;
    mem_cost = 2.0;
    intrinsic_cost = 8.0;
    loop_overhead = 2.0;
    fork_join = 200.0;
    call_overhead = 20.0;
    reduction_combine = 10.0;
  }

let with_processors p t = { t with processors = p }
let with_schedule s t = { t with schedule = s }

let pp ppf t =
  Format.fprintf ppf "%s (%d processors)" t.name t.processors
