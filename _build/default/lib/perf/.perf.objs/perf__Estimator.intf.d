lib/perf/estimator.mli: Ast Dependence Depenv Fortran_front Loopnest Machine
