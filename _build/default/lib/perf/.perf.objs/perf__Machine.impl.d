lib/perf/machine.ml: Format
