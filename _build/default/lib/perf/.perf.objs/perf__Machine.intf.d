lib/perf/machine.mli: Format
