lib/perf/estimator.ml: Ast Dependence Depenv Float Fortran_front Hashtbl Lazy List Loopnest Machine Option Symbol
