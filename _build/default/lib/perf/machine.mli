(** Parallel machine cost model.

    An abstract bus-based shared-memory multiprocessor in the spirit
    of the Alliant FX/8 and Sequent machines Ped targeted: uniform
    per-operation costs, a per-iteration loop overhead, and a
    fork/join cost for starting a parallel loop.  The absolute numbers
    are in abstract "cycles"; the evaluation only ever interprets
    ratios (speedups, relative loop weights). *)

(** How a PARALLEL DO's iterations map onto processors.  [Block]
    gives each processor one contiguous chunk; [Cyclic] deals
    iterations round-robin — better when per-iteration work varies
    (triangular updates). *)
type schedule = Block | Cyclic

type t = {
  name : string;
  processors : int;
  schedule : schedule;
  flop_cost : float;       (** per arithmetic/logical operation *)
  mem_cost : float;        (** per array element access *)
  intrinsic_cost : float;  (** per intrinsic call (SQRT, EXP, ...) *)
  loop_overhead : float;   (** per loop iteration: test + increment *)
  fork_join : float;       (** starting/finishing a parallel loop *)
  call_overhead : float;   (** procedure call linkage *)
  reduction_combine : float;  (** per processor, combining reductions *)
}

(** The default 8-processor machine. *)
val default : t

val with_processors : int -> t -> t
val with_schedule : schedule -> t -> t
val pp : Format.formatter -> t -> unit
