(* The ParaScope Editor, command-line edition.

   Usage:
     ped FILE.f [-u UNIT] [-s SCRIPT] [--no-interproc]
     ped -w WORKLOAD [-s SCRIPT]

   Without a script, reads commands from stdin (a REPL).  With one,
   executes the script and prints the transcript. *)

let run_session sess script =
  match script with
  | Some path ->
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    let lines =
      List.rev !lines
      |> List.filter (fun l ->
             let l = String.trim l in
             l <> "" && l.[0] <> '#')
    in
    List.iter print_endline (Ped.Command.script sess lines)
  | None ->
    print_endline "ParaScope Editor (type 'help' for commands, ctrl-d to quit)";
    (try
       while true do
         print_string "ped> ";
         let line = read_line () in
         if String.trim line = "quit" then raise End_of_file;
         print_endline (Ped.Command.run sess line)
       done
     with End_of_file -> print_endline "bye")

let main file workload unit_name script no_interproc =
  let interproc = not no_interproc in
  let sess =
    match (file, workload) with
    | Some path, _ ->
      let ic = open_in path in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      Ped.Session.load_source ~interproc ~file:path src
        ~unit_name:(Option.map String.uppercase_ascii unit_name)
    | None, Some wname -> (
      match Workloads.by_name wname with
      | Some w ->
        let unit_name =
          match unit_name with
          | Some u -> String.uppercase_ascii u
          | None -> Workloads.main_unit w
        in
        Ped.Session.load ~interproc (Workloads.program w) ~unit_name
      | None ->
        prerr_endline
          ("unknown workload (available: " ^ String.concat ", " Workloads.names ^ ")");
        exit 1)
    | None, None ->
      prerr_endline "give a Fortran file or a workload name (-w)";
      exit 1
  in
  run_session sess script

open Cmdliner

let file =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Fortran source file")

let workload =
  Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME"
         ~doc:"Load a built-in workload instead of a file")

let unit_name =
  Arg.(value & opt (some string) None & info [ "u"; "unit" ] ~docv:"UNIT"
         ~doc:"Focus this program unit (default: the main program)")

let script =
  Arg.(value & opt (some string) None & info [ "s"; "script" ] ~docv:"SCRIPT"
         ~doc:"Execute editor commands from this file and exit")

let no_interproc =
  Arg.(value & flag & info [ "no-interproc" ]
         ~doc:"Disable interprocedural analysis")

let cmd =
  let doc = "interactive parallel programming editor (ParaScope Editor)" in
  Cmd.v (Cmd.info "ped" ~doc)
    Term.(const main $ file $ workload $ unit_name $ script $ no_interproc)

let () = exit (Cmd.eval cmd)
