(* Batch analyzer: parse a program (file or workload), run full
   analysis on every unit, and print a parallelization report — the
   non-interactive counterpart of the editor, useful in scripts. *)

open Fortran_front

let report (program : Ast.program) =
  let summary = Interproc.Summary.analyze program in
  List.iter
    (fun (u : Ast.program_unit) ->
      Printf.printf "unit %s\n" u.Ast.uname;
      let env = Interproc.Summary.env_for summary u in
      let ddg = Dependence.Ddg.compute env in
      let loops = Dependence.Loopnest.loops env.Dependence.Depenv.nest in
      if loops = [] then print_endline "  (no loops)"
      else
        List.iter
          (fun (lp : Dependence.Loopnest.loop) ->
            let sid = lp.Dependence.Loopnest.lstmt.Ast.sid in
            let blockers = Dependence.Ddg.blocking env ddg sid in
            Printf.printf "  %sDO %s (s%d): %s\n"
              (String.make ((lp.Dependence.Loopnest.depth - 1) * 2) ' ')
              lp.Dependence.Loopnest.header.Ast.dvar sid
              (if blockers = [] then "parallelizable"
               else
                 Printf.sprintf "blocked by %d dependence(s) on %s"
                   (List.length blockers)
                   (String.concat ", "
                      (List.sort_uniq String.compare
                         (List.map
                            (fun (d : Dependence.Ddg.dep) -> d.Dependence.Ddg.var)
                            blockers)))))
          loops;
      let s = ddg.Dependence.Ddg.stats in
      Printf.printf "  pairs tested %d; deps proven %d, pending %d\n"
        s.Dependence.Ddg.pairs_tested s.Dependence.Ddg.proven
        s.Dependence.Ddg.pending)
    program.Ast.punits

let main file workload =
  let program =
    match (file, workload) with
    | Some path, _ ->
      let ic = open_in path in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      Parser.parse_program ~file:path src
    | None, Some wname -> (
      match Workloads.by_name wname with
      | Some w -> Workloads.program w
      | None ->
        prerr_endline
          ("unknown workload (available: " ^ String.concat ", " Workloads.names ^ ")");
        exit 1)
    | None, None ->
      prerr_endline "give a Fortran file or a workload name (-w)";
      exit 1
  in
  report program

open Cmdliner

let file =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Fortran source file")

let workload =
  Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME"
         ~doc:"Analyze a built-in workload instead of a file")

let cmd =
  let doc = "batch parallelism analyzer (ParaScope)" in
  Cmd.v (Cmd.info "panalyze" ~doc) Term.(const main $ file $ workload)

let () = exit (Cmd.eval cmd)
