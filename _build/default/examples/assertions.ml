(* User assertions: when analysis alone cannot decide, the user can
   tell the editor what the program guarantees.

   Story 1 (symbounds): a loop reads A(I+M) with M unknown to the
   compiler.  Asserting M's value lets the strong SIV test disprove
   the dependence.

   Story 2 (indexarr): A(IDX(I)) with an index array defeats every
   static test.  Asserting that IDX is a permutation makes the
   subscripts comparable, and the loop parallelizes.

     dune exec examples/assertions.exe *)

let story title workload ~unit_name script =
  Printf.printf "==== %s ====\n" title;
  let w = Option.get (Workloads.by_name workload) in
  let sess = Ped.Session.load (Workloads.program w) ~unit_name in
  List.iter print_endline (Ped.Command.script sess script);
  sess

(* Mark every now-parallelizable loop PARALLEL DO and simulate. *)
let parallelize_all_and_simulate sess =
  List.iter
    (fun (lp : Dependence.Loopnest.loop) ->
      let sid = lp.Dependence.Loopnest.lstmt.Fortran_front.Ast.sid in
      if Ped.Session.is_parallelizable sess sid then
        ignore
          (Ped.Session.transform sess "parallelize"
             (Transform.Catalog.On_loop sid)))
    (Ped.Session.loops sess);
  print_endline (Ped.Command.run sess "simulate 8")

let () =
  let sess =
    story "symbolic bound, value assertion" "symbounds" ~unit_name:"SHIFT"
      [
        "loops";
        "deps carried";
        "assert M = 64";
        "loops";
        "stats";
      ]
  in
  ignore sess;
  let sess =
    story "index array, permutation assertion" "indexarr" ~unit_name:"IDXARR"
      [
        "loops";
        "assert perm IDX";
        "loops";
      ]
  in
  parallelize_all_and_simulate sess
