(* Quickstart: load a small Fortran program into a Ped session, look
   at the panes, parallelize what is safe, and run it on the simulated
   machine.

     dune exec examples/quickstart.exe *)

let source =
  {|
      PROGRAM DEMO
      INTEGER N
      PARAMETER (N = 100)
      REAL A(N), B(N), C(N)
      INTEGER I
      REAL S
      DO I = 1, N
        A(I) = FLOAT(I)
        B(I) = FLOAT(2 * I)
      ENDDO
      DO I = 1, N
        C(I) = A(I) + B(I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + C(I)
      ENDDO
      PRINT *, S
      END
|}

let () =
  (* one call parses, builds the call graph, runs every analysis *)
  let sess = Ped.Session.load_source ~file:"demo.f" source ~unit_name:None in

  (* the editor's panes are plain strings *)
  print_endline (Ped.Pane.loops_pane sess);

  (* every loop here is parallelizable: make them PARALLEL DOs *)
  List.iter
    (fun (lp : Dependence.Loopnest.loop) ->
      let sid = lp.Dependence.Loopnest.lstmt.Fortran_front.Ast.sid in
      if Ped.Session.is_parallelizable sess sid then
        match
          Ped.Session.transform sess "parallelize"
            (Transform.Catalog.On_loop sid)
        with
        | Ok (_, true) -> Printf.printf "parallelized loop s%d\n" sid
        | Ok (_, false) | Error _ -> ())
    (Ped.Session.loops sess);

  (* the source pane shows the PARALLEL DOs *)
  print_endline (Ped.Pane.source_pane sess);

  (* and the simulator reports the speedup on 8 processors *)
  match Ped.Session.simulate ~processors:8 sess with
  | Ok (seq, par, output) ->
    Printf.printf "sequential: %.0f cycles\nparallel:   %.0f cycles\nspeedup:    %.2fx\noutput:     %s\n"
      seq par (seq /. par) (String.concat " | " output)
  | Error e -> prerr_endline ("simulation failed: " ^ e)
