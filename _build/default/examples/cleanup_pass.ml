(* The cleanup pass: programmer idioms that block parallelization and
   the transformations that remove them, end to end.

   - a reused temporary (two unrelated values)  -> rename
   - a temporary whose last value escapes       -> expand
   - an induction accumulator used as subscript -> indsub
   - a strided loop                             -> normalize

   After the cleanup every loop parallelizes and the output is
   unchanged.

     dune exec examples/cleanup_pass.exe *)

let source =
  {|
      PROGRAM MESSY
      INTEGER N
      PARAMETER (N = 32)
      REAL A(N), B(N), C(2*N), T
      INTEGER I, K
      K = 0
      DO I = 1, N
        T = FLOAT(I) * 0.5
        A(I) = T + 1.0
        T = FLOAT(N - I)
        B(I) = T * 2.0
      ENDDO
      DO I = 1, N
        K = K + 2
        C(K) = A(I) + B(I)
      ENDDO
      T = 0.0
      DO I = 2, 2*N, 2
        T = C(I) + T
      ENDDO
      PRINT *, T
      END
|}

let () =
  let sess = Ped.Session.load_source ~file:"messy.f" source ~unit_name:None in
  let script =
    [
      "loops";
      (* loop 1: T holds two unrelated values; rename splits them and
         the loop parallelizes *)
      "preview parallelize l1";
      "apply rename l1 T";
      "apply parallelize l1";
      (* loop 2: K is an induction accumulator; substitute then
         parallelize *)
      "preview parallelize l2";
      "apply indsub l2 K";
      "apply parallelize l2";
      (* loop 3: a strided reduction; normalize for a unit stride and
         parallelize (the reduction is recognized) *)
      "apply normalize l3";
      "apply parallelize l3";
      "history";
      "loops";
      "simulate 8";
    ]
  in
  List.iter print_endline (Ped.Command.script sess script)
