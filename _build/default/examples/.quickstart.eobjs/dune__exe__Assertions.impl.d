examples/assertions.ml: Dependence Fortran_front List Option Ped Printf Transform Workloads
