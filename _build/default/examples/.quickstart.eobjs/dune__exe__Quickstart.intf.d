examples/quickstart.mli:
