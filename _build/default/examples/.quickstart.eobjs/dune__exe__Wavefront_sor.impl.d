examples/wavefront_sor.ml: Dependence Fortran_front List Option Ped Printf Workloads
