examples/cleanup_pass.ml: List Ped
