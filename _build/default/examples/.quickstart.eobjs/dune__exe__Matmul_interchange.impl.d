examples/matmul_interchange.ml: Dependence Fortran_front List Option Ped Printf Workloads
