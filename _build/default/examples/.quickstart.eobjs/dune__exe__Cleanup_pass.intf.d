examples/cleanup_pass.mli:
