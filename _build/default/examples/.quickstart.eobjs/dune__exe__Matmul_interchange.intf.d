examples/matmul_interchange.mli:
