examples/quickstart.ml: Dependence Fortran_front List Ped Printf String Transform
