examples/assertions.mli:
