examples/wavefront_sor.mli:
