examples/advisor_tour.ml: Dependence Format Fortran_front List Ped Printf Workloads
