(* The advisor: performance-estimator-guided navigation plus
   power-steering diagnoses over the whole workload suite — "which
   loop should I look at, and what should I try".

     dune exec examples/advisor_tour.exe *)

let () =
  List.iter
    (fun (w : Workloads.t) ->
      Printf.printf "==== %s: %s ====\n" w.Workloads.name
        w.Workloads.description;
      let sess =
        Ped.Session.load (Workloads.program w)
          ~unit_name:(Workloads.main_unit w)
      in
      (match Ped.Advisor.next_target sess with
      | Some (lp, share) ->
        Printf.printf "next target: loop %s (s%d), %.0f%% of predicted time\n"
          lp.Dependence.Loopnest.header.Fortran_front.Ast.dvar
          lp.Dependence.Loopnest.lstmt.Fortran_front.Ast.sid
          (100.0 *. share)
      | None -> print_endline "nothing left to parallelize");
      match Ped.Advisor.advise sess with
      | [] -> print_endline "no suggestions"
      | suggestions ->
        List.iter
          (fun s -> Format.printf "  %a@." Ped.Advisor.pp_suggestion s)
          suggestions)
    Workloads.all
