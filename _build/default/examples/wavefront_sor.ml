(* The wavefront story: Gauss-Seidel carries dependences on both
   loops, so nothing is directly parallel.  Skewing the inner loop and
   interchanging yields a wavefront whose inner loop is parallel —
   the classic Ped transformation sequence, with the power-steering
   diagnosis shown at each step.

     dune exec examples/wavefront_sor.exe *)

let () =
  let w = Option.get (Workloads.by_name "sor") in
  let sess = Ped.Session.load (Workloads.program w) ~unit_name:"SOR" in
  let i_loop =
    List.find
      (fun (l : Dependence.Loopnest.loop) ->
        l.Dependence.Loopnest.header.Fortran_front.Ast.dvar = "I"
        && l.Dependence.Loopnest.depth = 2)
      (Ped.Session.loops sess)
  in
  let i = i_loop.Dependence.Loopnest.lstmt.Fortran_front.Ast.sid in
  let inner_j =
    List.find
      (fun (l : Dependence.Loopnest.loop) ->
        l.Dependence.Loopnest.depth = 3)
      (Ped.Session.loops sess)
  in
  let j = inner_j.Dependence.Loopnest.lstmt.Fortran_front.Ast.sid in
  let script =
    [
      "loops";
      Printf.sprintf "select s%d" i;
      "deps carried";
      (* parallelize refuses: the dependences are real *)
      Printf.sprintf "apply parallelize s%d" i;
      (* the advisor knows the recipe *)
      "advise";
      Printf.sprintf "apply skew s%d 1" i;
      Printf.sprintf "apply interchange s%d" i;
      (* the inner loop (old J statement id holds the I header now) is
         parallel *)
      Printf.sprintf "apply parallelize s%d" j;
      "src loops";
      "simulate 8";
    ]
  in
  List.iter print_endline (Ped.Command.script sess script)
