(* The granularity story: matmul written with the sequential K loop
   outermost.  Interchange moves a parallel loop outward, then
   parallelization pays off.  Driven entirely through the editor's
   command language, as a user session transcript.

     dune exec examples/matmul_interchange.exe *)

let () =
  let w = Option.get (Workloads.by_name "matmul") in
  let sess = Ped.Session.load (Workloads.program w) ~unit_name:"MATMUL" in
  (* find the K loop (the only blocked one) *)
  let k_loop =
    List.find
      (fun (l : Dependence.Loopnest.loop) ->
        l.Dependence.Loopnest.header.Fortran_front.Ast.dvar = "K")
      (Ped.Session.loops sess)
  in
  let k = k_loop.Dependence.Loopnest.lstmt.Fortran_front.Ast.sid in
  let script =
    [
      "loops";
      Printf.sprintf "select s%d" k;
      "vars";
      Printf.sprintf "preview interchange s%d" k;
      Printf.sprintf "apply interchange s%d" k;
      (* after the interchange the same statement id now heads the
         (parallelizable) I loop *)
      Printf.sprintf "apply parallelize s%d" k;
      "loops";
      "estimate 8";
      "simulate 8";
    ]
  in
  List.iter print_endline (Ped.Command.script sess script)
