(* The ParaScope Editor, command-line edition.

   Usage:
     ped FILE.f [-u UNIT] [-s SCRIPT] [--no-interproc]
     ped -w WORKLOAD [-s SCRIPT]
     ped [-w WORKLOAD] --execute [--domains N] [--schedule chunk|self]
         [--validate] [--force-parallel]
     ped ... [--profile] [--trace out.json]
     ped --calibrate
     ped fuzz [--n N] [--seed N] [--oracle dep,sem,run] [--corpus DIR]

   Without a script, reads commands from stdin (a REPL).  With one,
   executes the script and prints the transcript.  With --execute the
   program is auto-parallelized (or --force-parallel'd), run on real
   OCaml domains and checked against the sequential simulator; with no
   workload/file every built-in workload runs. *)

open Fortran_front

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let run_session sess script ~engine_stats =
  (match script with
  | Some path ->
    let lines =
      String.split_on_char '\n' (read_file path)
      |> List.filter (fun l ->
             let l = String.trim l in
             l <> "" && l.[0] <> '#')
    in
    List.iter print_endline (Ped.Command.script sess lines)
  | None ->
    print_endline "ParaScope Editor (type 'help' for commands, ctrl-d to quit)";
    (try
       while true do
         print_string "ped> ";
         let line = read_line () in
         if String.trim line = "quit" then raise End_of_file;
         print_endline (Ped.Command.run sess line)
       done
     with End_of_file -> print_endline "bye"));
  if engine_stats then print_endline (Ped.Session.engine_report sess)

(* ------------------------------------------------------------------ *)
(* Execute mode: run on the multicore runtime                          *)
(* ------------------------------------------------------------------ *)

let main_unit_of (program : Ast.program) =
  match
    List.find_opt
      (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main)
      program.Ast.punits
  with
  | Some u -> u.Ast.uname
  | None -> (List.hd program.Ast.punits).Ast.uname

(* Apply the assertion script, then mark every provably-safe loop of
   every unit PARALLEL DO — the editor's workflow, automated. *)
let auto_parallelize ?telemetry (program : Ast.program)
    (assertion_script : string list) =
  let sess =
    Ped.Session.load ?telemetry program ~unit_name:(main_unit_of program)
  in
  List.iter (fun cmd -> ignore (Ped.Command.run sess cmd)) assertion_script;
  List.iter
    (fun (u : Ast.program_unit) ->
      match Ped.Session.focus sess u.Ast.uname with
      | Ok () ->
        List.iter
          (fun (l : Dependence.Loopnest.loop) ->
            let sid = l.Dependence.Loopnest.lstmt.Ast.sid in
            if Ped.Session.is_parallelizable sess sid then
              ignore
                (Ped.Session.transform sess "parallelize"
                   (Transform.Catalog.On_loop sid)))
          (Ped.Session.loops sess)
      | Error _ -> ())
    (Ped.Session.program sess).Ast.punits;
  (Ped.Session.program sess)

(* The validator's static predictor: a (loop, variable, kind) -> dep id
   map over every unit's dependence graph, so each observed conflict is
   tagged with the static edge that foresaw it — or flagged unpredicted
   when no edge did. *)
let build_predictor ?telemetry (program : Ast.program) =
  let kind_str = function
    | Dependence.Ddg.Flow -> "flow"
    | Dependence.Ddg.Anti -> "anti"
    | Dependence.Ddg.Output -> "output"
    | Dependence.Ddg.Control -> "control"
  in
  let tag = Explain.Tag.create () in
  let sess =
    Ped.Session.load ?telemetry program ~unit_name:(main_unit_of program)
  in
  List.iter
    (fun (u : Ast.program_unit) ->
      match Ped.Session.focus sess u.Ast.uname with
      | Ok () ->
        List.iter
          (fun (d : Dependence.Ddg.dep) ->
            match d.Dependence.Ddg.carrier with
            | Some loop ->
              Explain.Tag.add tag ~loop ~var:d.Dependence.Ddg.var
                ~kind:(kind_str d.Dependence.Ddg.kind)
                ~dep:d.Dependence.Ddg.dep_id
            | None -> ())
          (Ped.Session.ddg sess).Dependence.Ddg.deps
      | Error _ -> ())
    program.Ast.punits;
  fun loop var kind ->
    Explain.Tag.find tag ~loop ~var ~kind:(Runtime.Exec.kind_to_string kind)

(* (name, program, assertion script) targets of this invocation *)
let targets file workload =
  match (file, workload) with
  | Some path, _ ->
    [ (Filename.basename path,
       Parser.parse_program ~file:path (read_file path), []) ]
  | None, Some wname when Workloads.is_stress_name wname -> (
    match Workloads.stress wname with
    | Ok p -> [ (wname, p, []) ]
    | Error e ->
      prerr_endline e;
      exit 1)
  | None, Some wname -> (
    match Workloads.by_name wname with
    | Some w ->
      [ (w.Workloads.name, Workloads.program w, w.Workloads.assertion_script) ]
    | None ->
      prerr_endline
        ("unknown workload (available: "
        ^ String.concat ", " Workloads.names
        ^ ", stress:PROFILE[@SCALE])");
      exit 1)
  | None, None ->
    List.map
      (fun (w : Workloads.t) ->
        (w.Workloads.name, Workloads.program w, w.Workloads.assertion_script))
      Workloads.all

(* --backend=compiled: the codegen pipeline instead of Runtime.Exec *)
let execute_one_compiled par_program ~domains ~schedule ~telemetry =
  let seq = Sim.Interp.run ~honor_parallel:false par_program in
  match Codegen.Compile.build ?telemetry par_program with
  | Error e ->
    Printf.printf "  compiled backend: %s\n%!"
      (Codegen.Compile.error_to_string e);
    false
  | Ok built -> (
    let run pool =
      Codegen.Compile.run ?telemetry built ~pool ~schedule
    in
    match
      Runtime.Pool.with_pool ?telemetry domains (fun pool ->
          run (Some pool))
    with
    | Error e ->
      Printf.printf "  compiled backend: %s\n%!"
        (Codegen.Compile.error_to_string e);
      false
    | Ok r ->
      let exact =
        r.Codegen.Compile.out_lines = seq.Sim.Interp.output
        && r.Codegen.Compile.store = seq.Sim.Interp.final_store
      in
      let close =
        Sim.Interp.outputs_match ~tol:1e-4 r.Codegen.Compile.out_lines
          seq.Sim.Interp.output
        && Sim.Interp.stores_match r.Codegen.Compile.store
             seq.Sim.Interp.final_store
      in
      Printf.printf
        "  %d domains, %s schedule (compiled %s): %.4fs, vs sequential \
         simulator: %s\n%!"
        domains
        (Runtime.Pool.schedule_to_string schedule)
        built.Codegen.Compile.module_name r.Codegen.Compile.wall_s
        (if exact then "identical"
         else if close then "matching (within rounding)"
         else "MISMATCH");
      List.iter
        (fun l -> Printf.printf "  | %s\n" l)
        r.Codegen.Compile.out_lines;
      exact || close)

let execute_one name program script ~domains ~schedule ~validate
    ~force_parallel ~backend ~telemetry =
  let par_program =
    if force_parallel then Runtime.Exec.force_parallel program
    else auto_parallelize ?telemetry program script
  in
  let n_parallel =
    List.fold_left
      (fun acc (u : Ast.program_unit) ->
        Ast.fold_stmts
          (fun acc (s : Ast.stmt) ->
            match s.Ast.node with
            | Ast.Do (h, _) when h.Ast.parallel -> acc + 1
            | _ -> acc)
          acc u.Ast.body)
      0 par_program.Ast.punits
  in
  Printf.printf "%s: %d PARALLEL DO loop%s%s\n%!" name n_parallel
    (if n_parallel = 1 then "" else "s")
    (if force_parallel then " (forced)" else "");
  let n_conflicts =
    if not validate then 0
    else begin
      let predict = build_predictor ?telemetry par_program in
      let v =
        Runtime.Exec.run ~validate:true ~predict ?telemetry par_program
      in
      (match v.Runtime.Exec.conflicts with
      | [] ->
        Printf.printf "  validator: no cross-iteration conflicts observed\n%!"
      | cs ->
        List.iter
          (fun c ->
            Printf.printf "  validator: %s\n%!"
              (Runtime.Exec.conflict_to_string c))
          cs);
      List.length v.Runtime.Exec.conflicts
    end
  in
  if backend = "compiled" then
    let ok =
      execute_one_compiled par_program ~domains ~schedule ~telemetry
    in
    force_parallel || (ok && n_conflicts = 0)
  else
  let seq = Sim.Interp.run ~honor_parallel:false program in
  let o = Runtime.Exec.run ~domains ~schedule ?telemetry par_program in
  let exact =
    o.Runtime.Exec.output = seq.Sim.Interp.output
    && o.Runtime.Exec.final_store = seq.Sim.Interp.final_store
  in
  (* printed values carry 6 significant digits, so cross-domain
     reduction reassociation can flip the last printed digit: compare
     output a decade looser than the raw final stores *)
  let close =
    Sim.Interp.outputs_match ~tol:1e-4 o.Runtime.Exec.output
      seq.Sim.Interp.output
    && Sim.Interp.stores_match o.Runtime.Exec.final_store
         seq.Sim.Interp.final_store
  in
  Printf.printf
    "  %d domains, %s schedule: %.4fs, %d statements, vs sequential \
     simulator: %s\n%!"
    domains
    (Runtime.Pool.schedule_to_string schedule)
    o.Runtime.Exec.wall_s o.Runtime.Exec.stmts_executed
    (if exact then "identical"
     else if close then "matching (within rounding)"
     else "MISMATCH");
  List.iter (fun l -> Printf.printf "  | %s\n" l) o.Runtime.Exec.output;
  (* a forced-parallel run is EXPECTED to conflict/mismatch; report only *)
  force_parallel || ((exact || close) && n_conflicts = 0)

let execute file workload domains schedule validate force_parallel backend
    ~telemetry =
  let domains = max 1 domains in
  let schedule =
    match Runtime.Pool.schedule_of_string schedule with
    | Some s -> s
    | None ->
      prerr_endline "bad --schedule (chunk or self)";
      exit 1
  in
  if backend <> "interp" && backend <> "compiled" then begin
    prerr_endline "bad --backend (interp or compiled)";
    exit 1
  end;
  List.fold_left
    (fun acc (name, program, script) ->
      execute_one name program script ~domains ~schedule ~validate
        ~force_parallel ~backend ~telemetry
      && acc)
    true
    (targets file workload)

(* --diagnose: run the performance debugger over each target — a
   sequential baseline plus an instrumented parallel run, then the
   detector rules — and print the ranked findings. *)
let diagnose_one name program script ~domains ~schedule ~backend ~telemetry =
  let par_program = auto_parallelize ?telemetry program script in
  Printf.printf "%s:\n%!" name;
  if backend = "compiled" then begin
    match Codegen.Compile.build ?telemetry par_program with
    | Error e ->
      Printf.printf "  compiled backend: %s\n%!"
        (Codegen.Compile.error_to_string e);
      false
    | Ok built -> (
      let sink = Telemetry.retained () in
      let seq = Codegen.Compile.run ?telemetry built ~pool:None ~schedule in
      let par =
        Runtime.Pool.with_pool ~telemetry:sink domains (fun pool ->
            Codegen.Compile.run ~telemetry:sink built ~pool:(Some pool)
              ~schedule)
      in
      match (seq, par) with
      | Ok s, Ok p ->
        let spans = Telemetry.drain_spans sink in
        let d =
          Perfdebug.Driver.analyze ~domains ~schedule
            ~seq_wall:s.Codegen.Compile.wall_s
            ~par_wall:p.Codegen.Compile.wall_s
            ~fallback_run_ns:(p.Codegen.Compile.wall_s *. 1e9)
            par_program spans
        in
        print_string (Perfdebug.Driver.render d);
        true
      | Error e, _ | _, Error e ->
        Printf.printf "  compiled backend: %s\n%!"
          (Codegen.Compile.error_to_string e);
        false)
  end
  else begin
    match Perfdebug.Driver.diagnose ~domains ~schedule par_program with
    | d ->
      print_string (Perfdebug.Driver.render d);
      true
    | exception Runtime.Exec.Runtime_error m ->
      Printf.printf "  runtime error: %s\n%!" m;
      false
  end

let diagnose_mode file workload domains schedule backend ~telemetry =
  let domains = max 1 domains in
  let schedule =
    match Runtime.Pool.schedule_of_string schedule with
    | Some s -> s
    | None ->
      prerr_endline "bad --schedule (chunk or self)";
      exit 1
  in
  if backend <> "interp" && backend <> "compiled" then begin
    prerr_endline "bad --backend (interp or compiled)";
    exit 1
  end;
  List.fold_left
    (fun acc (name, program, script) ->
      diagnose_one name program script ~domains ~schedule ~backend ~telemetry
      && acc)
    true
    (targets file workload)

let calibrate_mode file workload =
  let ts = targets file workload in
  Printf.printf "calibrating on %d program%s...\n%!" (List.length ts)
    (if List.length ts = 1 then "" else "s");
  let machine =
    Runtime.Calibrate.fit (List.map (fun (_, p, _) -> p) ts)
  in
  let weights label (m : Perf.Machine.t) =
    Printf.printf
      "%s: flop %.2f  mem %.2f  intrinsic %.2f  loop %.2f  call %.2f\n" label
      m.Perf.Machine.flop_cost m.Perf.Machine.mem_cost
      m.Perf.Machine.intrinsic_cost m.Perf.Machine.loop_overhead
      m.Perf.Machine.call_overhead
  in
  weights "default   " Perf.Machine.default;
  weights "calibrated" machine

(* ------------------------------------------------------------------ *)

let main file workload unit_name script no_interproc exec domains schedule
    validate force_parallel backend analysis_domains order seed calibrate
    diagnose engine_stats profile trace metrics =
  (* one recording sink, installed as the process default, so the
     session, the transformation catalog, the analysis passes and the
     runtime workers all emit to the same place *)
  let sink =
    if profile || trace <> None || metrics <> None then begin
      let s = Telemetry.make ~record_spans:(profile || trace <> None) () in
      Telemetry.set_default s;
      Some s
    end
    else None
  in
  let finish ok =
    (match sink with
    | Some s ->
      if profile then print_string (Telemetry.profile_report s);
      Option.iter
        (fun path ->
          Telemetry.write_chrome_trace s path;
          Printf.printf
            "trace written to %s (open in chrome://tracing or \
             ui.perfetto.dev)\n%!"
            path)
        trace;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Telemetry.metrics_json s);
          output_char oc '\n';
          close_out oc;
          Printf.printf "metrics written to %s\n%!" path)
        metrics
    | None -> ());
    if not ok then exit 1
  in
  if calibrate then begin
    calibrate_mode file workload;
    finish true
  end
  else if diagnose then
    finish
      (diagnose_mode file workload domains schedule backend ~telemetry:sink)
  else if exec || validate || force_parallel then
    finish
      (execute file workload domains schedule validate force_parallel backend
         ~telemetry:sink)
  else begin
    let interproc = not no_interproc in
    (* the analysis pool outlives the session (every re-analysis after
       an edit fans out through it) but not [finish], so the trace
       sees the worker lanes of a fully shut-down pool *)
    let with_runner f =
      if analysis_domains <= 1 then f None
      else if not Server.Audit.parallel_analysis then begin
        prerr_endline (Server.Audit.refuse_parallel_analysis ~what:"ped");
        exit 2
      end
      else
        Runtime.Pool.with_pool ?telemetry:sink analysis_domains (fun pool ->
            f (Some (Runtime.Pool.analysis_runner pool)))
    in
    with_runner (fun runner ->
        let sess =
          match (file, workload) with
          | Some path, _ ->
            Ped.Session.load_source ~interproc ?runner ?telemetry:sink
              ~file:path (read_file path)
              ~unit_name:(Option.map String.uppercase_ascii unit_name)
          | None, Some wname when Workloads.is_stress_name wname -> (
            match Workloads.stress wname with
            | Ok program ->
              let unit_name =
                match unit_name with
                | Some u -> String.uppercase_ascii u
                | None -> main_unit_of program
              in
              Ped.Session.load ~interproc ?runner ?telemetry:sink program
                ~unit_name
            | Error e ->
              prerr_endline e;
              exit 1)
          | None, Some wname -> (
            match Workloads.by_name wname with
            | Some w ->
              let unit_name =
                match unit_name with
                | Some u -> String.uppercase_ascii u
                | None -> Workloads.main_unit w
              in
              Ped.Session.load ~interproc ?runner ?telemetry:sink
                (Workloads.program w) ~unit_name
            | None ->
              prerr_endline
                ("unknown workload (available: "
                ^ String.concat ", " Workloads.names
                ^ ", stress:PROFILE[@SCALE])");
              exit 1)
          | None, None ->
            prerr_endline "give a Fortran file or a workload name (-w)";
            exit 1
        in
        (match order with
        | "seq" -> ()
        | "reverse" -> Ped.Session.set_sim_order sess Sim.Interp.Reverse
        | "shuffle" -> Ped.Session.set_sim_order sess (Sim.Interp.Shuffled seed)
        | o ->
          prerr_endline ("bad --order " ^ o ^ " (seq, reverse or shuffle)");
          exit 1);
        run_session sess script ~engine_stats);
    finish true
  end

open Cmdliner

(* Not positional: a [Cmd.group] reads the first positional argument
   as a sub-command name, so [ped FILE.f] would be rejected as an
   unknown command.  The driver below rewrites a leading non-option
   argument into [--file], keeping the documented usage working. *)
let file =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"Fortran source file")

let workload =
  Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME"
         ~doc:"Load a built-in workload instead of a file")

let unit_name =
  Arg.(value & opt (some string) None & info [ "u"; "unit" ] ~docv:"UNIT"
         ~doc:"Focus this program unit (default: the main program)")

let script =
  Arg.(value & opt (some string) None & info [ "s"; "script" ] ~docv:"SCRIPT"
         ~doc:"Execute editor commands from this file and exit")

let no_interproc =
  Arg.(value & flag & info [ "no-interproc" ]
         ~doc:"Disable interprocedural analysis")

let exec_flag =
  Arg.(value & flag & info [ "execute" ]
         ~doc:"Auto-parallelize and run on the multicore runtime, checking \
               the result against the sequential simulator (all workloads \
               when no file or workload is given)")

let domains =
  Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N"
         ~doc:"Worker domains for --execute")

let analysis_domains =
  Arg.(value & opt int 1 & info [ "analysis-domains" ] ~docv:"N"
         ~doc:"Fan dependence-test buckets of every analysis out across N \
               pool domains (1 = sequential analysis); the graphs are \
               identical either way")

let schedule =
  Arg.(value & opt string "chunk" & info [ "schedule" ] ~docv:"POLICY"
         ~doc:"Iteration scheduling for --execute: chunk (contiguous blocks) \
               or self (atomic work counter)")

let validate =
  Arg.(value & flag & info [ "validate" ]
         ~doc:"Run the shadow-memory dependence validator over every \
               PARALLEL DO before executing")

let force_parallel =
  Arg.(value & flag & info [ "force-parallel" ]
         ~doc:"Mark every DO loop parallel, bypassing the analysis (for \
               exercising --validate on unsafe loops)")

let exec_backend =
  Arg.(value & opt string "interp" & info [ "backend" ] ~docv:"NAME"
         ~doc:"Executor for --execute: interp (the tree-walking runtime) or \
               compiled (native code via the codegen pipeline, checked \
               against the sequential simulator)")

let order =
  Arg.(value & opt string "seq" & info [ "order" ] ~docv:"ORDER"
         ~doc:"Iteration order for simulated parallel loops in the editor: \
               seq, reverse or shuffle")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
         ~doc:"Seed for --order shuffle")

let calibrate =
  Arg.(value & flag & info [ "calibrate" ]
         ~doc:"Fit the performance model's per-op weights from measured \
               runtime executions and print the machines")

let diagnose =
  Arg.(value & flag & info [ "diagnose" ]
         ~doc:"Run the performance debugger: execute each target twice (a \
               sequential baseline and an instrumented parallel run under \
               the selected backend) and print ranked diagnoses — load \
               imbalance, insufficient granularity, privatization cost, \
               serial fraction, prediction mismatch — with remediation \
               hints")

let engine_stats =
  Arg.(value & flag & info [ "engine-stats" ]
         ~doc:"Print incremental-analysis engine cache statistics on exit")

let profile =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"Record telemetry spans and print an aggregated profile tree \
               (count, total and self time per span) on exit")

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record telemetry spans and write a Chrome trace_event JSON \
               file on exit — one lane per OCaml domain; open it in \
               chrome://tracing or ui.perfetto.dev")

let metrics =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the telemetry counters (dependence-test disprovals per \
               tier, assumed/proven edges, cache hits, validator conflicts) \
               as JSON to FILE on exit")

(* ------------------------------------------------------------------ *)
(* fuzz subcommand: the differential-testing oracles                   *)
(* ------------------------------------------------------------------ *)

let fuzz_main n fseed oracle codegen corpus no_shrink no_sequences small
    stress quiet =
  let oracles =
    String.split_on_char ',' oracle
    |> List.concat_map (fun o ->
           match String.trim (String.lowercase_ascii o) with
           | "dep" | "dependence" -> [ Oracle.Driver.Dep ]
           | "sem" | "semantics" -> [ Oracle.Driver.Sem ]
           | "run" | "runtime" -> [ Oracle.Driver.Run ]
           | "cg" | "codegen" -> [ Oracle.Driver.Cg ]
           | "all" -> [ Oracle.Driver.Dep; Oracle.Driver.Sem; Oracle.Driver.Run ]
           | other ->
             prerr_endline
               ("bad --oracle " ^ other ^ " (dep, sem, run, cg, or all)");
             exit 2)
  in
  let oracles =
    if codegen && not (List.mem Oracle.Driver.Cg oracles) then
      oracles @ [ Oracle.Driver.Cg ]
    else oracles
  in
  let program_gen =
    match stress with
    | None -> None
    | Some name -> (
      match Oracle.Stress.by_name name with
      | Some p -> Some (Oracle.Stress.fuzz_gen p)
      | None ->
        prerr_endline
          ("bad --stress " ^ name ^ " (available: "
          ^ String.concat ", " Oracle.Stress.names
          ^ ")");
        exit 2)
  in
  let cfg =
    {
      Oracle.Driver.n;
      seed =
        Oracle.Driver.seed_of ~env:(Sys.getenv_opt "QCHECK_SEED") ~cli:fseed;
      oracles;
      corpus_dir = corpus;
      shrink = not no_shrink;
      sequences = not no_sequences;
      gen_cfg = (if small then Oracle.Gen.small else Oracle.Gen.default);
      program_gen;
      progress =
        (if quiet then ignore
         else fun m -> Printf.eprintf "  [fuzz] %s\n%!" m);
    }
  in
  let stats = Oracle.Driver.run cfg in
  print_string (Oracle.Driver.summary stats);
  if not (Oracle.Driver.ok stats) then exit 1

let fuzz_cmd =
  let n =
    Arg.(value & opt int 200 & info [ "n"; "num" ] ~docv:"N"
           ~doc:"Programs to generate")
  in
  let fseed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
           ~doc:"Generator seed (default: $(b,QCHECK_SEED) from the \
                 environment, then 42)")
  in
  let oracle =
    Arg.(value & opt string "all" & info [ "oracle" ] ~docv:"LIST"
           ~doc:"Comma-separated oracles to run: dep (brute-force \
                 dependence), sem (transformation semantics), run \
                 (parallel runtime), or all")
  in
  let codegen =
    Arg.(value & flag & info [ "codegen" ]
           ~doc:"Also run the codegen oracle: compile each program to \
                 native code and diff it against the interpreter \
                 (programs outside the compilable subset are skipped)")
  in
  let corpus =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Save minimized counterexamples to this directory")
  in
  let no_shrink =
    Arg.(value & flag & info [ "unshrunk" ]
           ~doc:"Report counterexamples unminimized")
  in
  let no_sequences =
    Arg.(value & flag & info [ "skip-sequences" ]
           ~doc:"Skip composed transformation sequences")
  in
  let small =
    Arg.(value & flag & info [ "small" ]
           ~doc:"Generate smaller programs (smoke-test shape)")
  in
  let stress =
    Arg.(value & opt (some string) None & info [ "stress" ] ~docv:"PROFILE"
           ~doc:"Draw fuzz-scale multi-unit programs from this stress \
                 profile (deep, wide, many-units) instead of the \
                 single-unit generator")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No progress output") in
  let doc =
    "fuzz the analyses, transformations and runtime against brute-force \
     oracles"
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const fuzz_main $ n $ fseed $ oracle $ codegen $ corpus $ no_shrink
          $ no_sequences $ small $ stress $ quiet)

(* ------------------------------------------------------------------ *)
(* stress subcommand: the stress-workload factory                      *)
(* ------------------------------------------------------------------ *)

let stress_main profile sseed pscale plines out list_profiles =
  if list_profiles then begin
    List.iter
      (fun p ->
        Printf.printf "%-12s %s\n" p.Oracle.Stress.sp_name
          p.Oracle.Stress.sp_desc)
      Oracle.Stress.all;
    exit 0
  end;
  let seed =
    Oracle.Driver.seed_of ~env:(Sys.getenv_opt "QCHECK_SEED") ~cli:sseed
  in
  match Oracle.Stress.by_name profile with
  | None ->
    prerr_endline
      ("unknown stress profile " ^ profile ^ " (available: "
      ^ String.concat ", " Oracle.Stress.names
      ^ ")");
    exit 2
  | Some p ->
    let p =
      match pscale with Some f -> Oracle.Stress.scale f p | None -> p
    in
    let p, src =
      match plines with
      | Some target -> Oracle.Stress.scale_to_lines ~seed ~target p
      | None -> (p, Oracle.Stress.source ~seed p)
    in
    let program = Oracle.Stress.generate ~seed p in
    (match out with
    | Some "-" -> print_string src
    | Some path ->
      let oc = open_out path in
      output_string oc src;
      close_out oc
    | None -> ());
    Printf.printf "stress %s seed=%d: units=%d lines=%d fingerprint=%s\n"
      p.Oracle.Stress.sp_name seed
      (List.length program.Ast.punits)
      (Oracle.Stress.lines src)
      (Oracle.Stress.fingerprint program)

let stress_cmd =
  let profile =
    Arg.(value & opt string "deep" & info [ "profile" ] ~docv:"PROFILE"
           ~doc:"Stress profile: deep, wide, or many-units")
  in
  let sseed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
           ~doc:"Generator seed (default: $(b,QCHECK_SEED) from the \
                 environment, then 42)")
  in
  let pscale =
    Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"F"
           ~doc:"Multiply the profile's unit/nest counts by F")
  in
  let plines =
    Arg.(value & opt (some int) None & info [ "lines" ] ~docv:"N"
           ~doc:"Grow the unit count until the source reaches N lines")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the generated Fortran source here ($(b,-) for \
                 stdout)")
  in
  let list_profiles =
    Arg.(value & flag & info [ "list" ] ~doc:"List the profiles and exit")
  in
  let doc =
    "generate a deterministic stress program (its summary line carries the \
     cross-process fingerprint)"
  in
  Cmd.v (Cmd.info "stress" ~doc)
    Term.(const stress_main $ profile $ sseed $ pscale $ plines $ out
          $ list_profiles)

(* ------------------------------------------------------------------ *)
(* serve subcommand: the multi-session analysis server                 *)
(* ------------------------------------------------------------------ *)

let serve_main cache_dir cache_mb history_limit analysis_domains trace
    profile =
  let sink = Telemetry.make ~record_spans:(trace <> None || profile) () in
  Telemetry.set_default sink;
  let cache = Server.Cache.create ~telemetry:sink ~budget_mb:cache_mb () in
  (match cache_dir with
  | None -> ()
  | Some dir -> (
    match Server.Cache.load cache ~dir with
    | Ok 0 -> ()
    | Ok n ->
      Printf.eprintf "[serve] warmed %d ddg buckets from %s\n%!" n dir
    | Error e -> Printf.eprintf "[serve] %s\n%!" e));
  let with_runner f =
    if analysis_domains <= 1 then f None
    else
      Runtime.Pool.with_pool ~telemetry:sink analysis_domains (fun pool ->
          f (Some (Runtime.Pool.analysis_runner pool)))
  in
  with_runner (fun runner ->
      match Server.Serve.create ~telemetry:sink ~cache ?runner ~history_limit ()
      with
      | exception Invalid_argument e ->
        prerr_endline e;
        exit 2
      | srv -> Server.Serve.serve srv stdin stdout);
  (match cache_dir with
  | None -> ()
  | Some dir -> (
    match Server.Cache.save cache ~dir with
    | Ok n -> Printf.eprintf "[serve] saved %d ddg buckets to %s\n%!" n dir
    | Error e -> Printf.eprintf "[serve] save failed: %s\n%!" e));
  if profile then print_string (Telemetry.profile_report sink);
  Option.iter
    (fun path ->
      Telemetry.write_chrome_trace sink path;
      Printf.eprintf
        "[serve] trace written to %s (one lane per session)\n%!" path)
    trace

let cache_dir =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Persist the shared dependence-test cache here: warmed on \
               start, saved on exit; a file from another format version is \
               rejected")

let cache_mb =
  Arg.(value & opt int 256 & info [ "cache-mb" ] ~docv:"MB"
         ~doc:"LRU byte budget of the shared analysis cache")

let history_limit =
  Arg.(value & opt int 1000 & info [ "history-limit" ] ~docv:"N"
         ~doc:"Undo-history bound per session (oldest entries dropped)")

let serve_cmd =
  let doc =
    "serve many editor sessions over stdin/stdout with one shared analysis \
     cache (line protocol: open/cmd/stats/sessions/cache/close/quit)"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const serve_main $ cache_dir $ cache_mb $ history_limit
          $ analysis_domains $ trace $ profile)

(* ------------------------------------------------------------------ *)
(* batch subcommand: stream edit-scripts through concurrent sessions   *)
(* ------------------------------------------------------------------ *)

let batch_main jobfile bdomains banalysis_domains repeat cache_dir cache_mb
    history_limit check audit trace quiet =
  if audit then print_endline (Server.Audit.report ());
  match Server.Batch.parse_job_file jobfile with
  | Error e ->
    prerr_endline e;
    exit 2
  | Ok jobs ->
    let jobs =
      List.concat
        (List.init (max 1 repeat) (fun r ->
             if r = 0 then jobs
             else
               List.map
                 (fun (j : Server.Batch.job) ->
                   { j with Server.Batch.j_id =
                       Printf.sprintf "%s~%d" j.Server.Batch.j_id r })
                 jobs))
    in
    let sink = Telemetry.make ~record_spans:(trace <> None) () in
    Telemetry.set_default sink;
    let cache = Server.Cache.create ~telemetry:sink ~budget_mb:cache_mb () in
    (* the persistent cache only feeds the fully shared (single-domain)
       mode; partitioned workers build their own *)
    (match (cache_dir, bdomains <= 1) with
    | Some dir, true -> (
      match Server.Cache.load cache ~dir with
      | Ok 0 -> ()
      | Ok n ->
        if not quiet then
          Printf.eprintf "[batch] warmed %d ddg buckets from %s\n%!" n dir
      | Error e -> Printf.eprintf "[batch] %s\n%!" e)
    | _ -> ());
    (match
       Server.Batch.run ~telemetry:sink ~cache ~domains:bdomains
         ~analysis_domains:banalysis_domains ~history_limit ~check jobs
     with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok o ->
      if not quiet then print_endline (Server.Batch.report o);
      (match (cache_dir, bdomains <= 1) with
      | Some dir, true -> (
        match Server.Cache.save cache ~dir with
        | Ok n ->
          if not quiet then
            Printf.eprintf "[batch] saved %d ddg buckets to %s\n%!" n dir
        | Error e -> Printf.eprintf "[batch] save failed: %s\n%!" e)
      | _ -> ());
      Option.iter
        (fun path ->
          Telemetry.write_chrome_trace sink path;
          if not quiet then
            Printf.eprintf "[batch] trace written to %s\n%!" path)
        trace;
      if o.Server.Batch.o_identical = Some false then exit 1)

let batch_cmd =
  let jobfile =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JOBFILE"
           ~doc:"Job file: one $(b,FILE[#UNIT] :: cmd ; cmd) line per \
                 session")
  in
  let bdomains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains: 1 interleaves all sessions over one fully \
                 shared cache; more partitions jobs across domains, sharing \
                 the cache when the --audit inventory allows it")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Run the job list N times (duplicates exercise \
                 cross-session cache sharing)")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Replay every job from scratch (no caching, no sharing) and \
                 require byte-identical dependence graphs; exit 1 on \
                 mismatch")
  in
  let audit =
    Arg.(value & flag & info [ "audit" ]
           ~doc:"Print the domain-safety audit of shared state first")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No report output") in
  let doc = "stream edit-script jobs through concurrent analysis sessions" in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(const batch_main $ jobfile $ bdomains $ analysis_domains $ repeat
          $ cache_dir $ cache_mb $ history_limit $ check $ audit $ trace
          $ quiet)

(* ------------------------------------------------------------------ *)
(* compile subcommand: the native code generation pipeline             *)
(* ------------------------------------------------------------------ *)

let compile_target ~sink ~backend ~out ~keep ~domains ~schedule ~no_run
    (name, program, script) =
  let par = auto_parallelize ?telemetry:sink program script in
  let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v in
  let result =
    let* () =
      match out with
      | None -> Ok ()
      | Some path ->
        let* src = Codegen.Compile.generate ~backend par in
        let oc = open_out path in
        output_string oc src;
        close_out oc;
        Printf.printf "%s: %s source written to %s\n%!" name
          backend.Codegen.Backend.name path;
        Ok ()
    in
    let* built = Codegen.Compile.build ?telemetry:sink ~backend ~keep par in
    Printf.printf "%s: compiled as %s (%d IR statements)%s\n%!" name
      built.Codegen.Compile.module_name built.Codegen.Compile.ir_stmts
      (if keep then " [" ^ built.Codegen.Compile.src_file ^ "]" else "");
    if no_run then Ok true
    else begin
      let interp =
        try Ok (Sim.Interp.run ~honor_parallel:false par)
        with Sim.Interp.Runtime_error m ->
          Error (Codegen.Compile.Failed ("interpreter baseline: " ^ m))
      in
      let* interp = interp in
      let* s = Codegen.Compile.run ?telemetry:sink built ~pool:None ~schedule in
      let seq_ok =
        s.Codegen.Compile.out_lines = interp.Sim.Interp.output
        && s.Codegen.Compile.store = interp.Sim.Interp.final_store
      in
      Printf.printf "  sequential: %.4fs, vs simulator: %s\n%!"
        s.Codegen.Compile.wall_s
        (if seq_ok then "identical" else "MISMATCH");
      let* p =
        Runtime.Pool.with_pool ?telemetry:sink domains (fun pool ->
            Codegen.Compile.run ?telemetry:sink built ~pool:(Some pool)
              ~schedule)
      in
      let par_ok =
        Sim.Interp.outputs_match ~tol:1e-4 p.Codegen.Compile.out_lines
          interp.Sim.Interp.output
        && Sim.Interp.stores_match p.Codegen.Compile.store
             interp.Sim.Interp.final_store
      in
      Printf.printf "  %d domains, %s schedule: %.4fs, vs simulator: %s\n%!"
        domains
        (Runtime.Pool.schedule_to_string schedule)
        p.Codegen.Compile.wall_s
        (if par_ok then "matching" else "MISMATCH");
      List.iter
        (fun l -> Printf.printf "  | %s\n" l)
        p.Codegen.Compile.out_lines;
      Ok (seq_ok && par_ok)
    end
  in
  match result with
  | Ok ok -> ok
  | Error e ->
    Printf.printf "%s: %s\n%!" name (Codegen.Compile.error_to_string e);
    false

let compile_main file workload out keep backend cdomains schedule no_run
    profile trace =
  let sink =
    if profile || trace <> None then begin
      let s = Telemetry.make ~record_spans:true () in
      Telemetry.set_default s;
      Some s
    end
    else None
  in
  let backend =
    match Codegen.Backend.find backend with
    | Some b -> b
    | None ->
      prerr_endline
        ("unknown backend " ^ backend ^ " (available: "
        ^ String.concat ", "
            (List.map
               (fun (b : Codegen.Backend.t) -> b.Codegen.Backend.name)
               Codegen.Backend.all)
        ^ ")");
      exit 1
  in
  let schedule =
    match Runtime.Pool.schedule_of_string schedule with
    | Some s -> s
    | None ->
      prerr_endline "bad --schedule (chunk or self)";
      exit 1
  in
  let ts = targets file workload in
  (match (out, ts) with
  | Some _, _ :: _ :: _ ->
    prerr_endline "-o needs a single program (give a file or -w)";
    exit 1
  | _ -> ());
  let ok =
    List.fold_left
      (fun acc t ->
        compile_target ~sink ~backend ~out ~keep ~domains:(max 1 cdomains)
          ~schedule ~no_run t
        && acc)
      true ts
  in
  (match sink with
  | Some s ->
    if profile then print_string (Telemetry.profile_report s);
    Option.iter (fun path -> Telemetry.write_chrome_trace s path) trace
  | None -> ());
  if not ok then exit 1

let compile_cmd =
  let cfile =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Fortran source file (default: every built-in workload)")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the generated backend source to FILE for inspection")
  in
  let keep =
    Arg.(value & flag & info [ "keep" ]
           ~doc:"Keep the scratch artifacts under .ped-codegen/ instead of \
                 deleting them after loading")
  in
  let cbackend =
    Arg.(value & opt string "ocaml-domains" & info [ "backend" ] ~docv:"NAME"
           ~doc:"Code generation backend (ocaml-domains)")
  in
  let no_run =
    Arg.(value & flag & info [ "no-run" ]
           ~doc:"Compile and load only; skip execution and the differential \
                 check against the simulator")
  in
  let doc =
    "auto-parallelize a program, compile it to native code through the \
     codegen backend, run it on real domains and check it against the \
     sequential simulator"
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const compile_main $ cfile $ workload $ out $ keep $ cbackend
          $ domains $ schedule $ no_run $ profile $ trace)

let cmd =
  let doc = "interactive parallel programming editor (ParaScope Editor)" in
  let default =
    Term.(const main $ file $ workload $ unit_name $ script $ no_interproc
          $ exec_flag $ domains $ schedule $ validate $ force_parallel
          $ exec_backend $ analysis_domains $ order $ seed $ calibrate
          $ diagnose $ engine_stats $ profile $ trace $ metrics)
  in
  Cmd.group ~default (Cmd.info "ped" ~doc)
    [ fuzz_cmd; stress_cmd; serve_cmd; batch_cmd; compile_cmd ]

let () =
  let argv =
    match Array.to_list Sys.argv with
    | exe :: a :: rest
      when a <> "fuzz" && a <> "stress" && a <> "serve" && a <> "batch"
           && a <> "compile"
           && String.length a > 0
           && a.[0] <> '-' ->
      Array.of_list (exe :: "--file" :: a :: rest)
    | _ -> Sys.argv
  in
  exit (Cmd.eval ~argv cmd)
