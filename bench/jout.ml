(* Shared JSON emission for the harness's BENCH_*.json artifacts.

   Every experiment used to hand-roll its Printf format string; this
   is the one writer they share.  Values only — the reader contract
   (key names) stays with each experiment. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string  (* pre-rendered JSON, spliced verbatim *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_nan f || Float.is_integer f then Printf.sprintf "%.1f" f
  else
    (* shortest representation that still round-trips typical bench
       values (ratios, seconds, percentages) *)
    let s = Printf.sprintf "%.6g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let to_string (v : t) : string =
  let b = Buffer.create 256 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int x -> Buffer.add_string b (string_of_int x)
    | Float x -> Buffer.add_string b (float_repr x)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Raw s -> Buffer.add_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          Buffer.add_string b (escape key);
          Buffer.add_string b "\": ";
          go (indent + 2) value)
        fields;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* Write [v] to [file] (with trailing newline) and log the artifact,
   the way every experiment reports its BENCH_*.json. *)
let write file (v : t) : unit =
  let oc = open_out file in
  output_string oc (to_string v);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" file
