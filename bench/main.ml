(* The evaluation harness: regenerates every table and figure of
   EXPERIMENTS.md, then runs the bechamel microbenchmarks.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table3  -- one experiment
*)

open Fortran_front
open Dependence

let line = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* monotonic wall clock, from lib/telemetry's C stub *)
let now_s () = Int64.to_float (Telemetry.now_ns ()) /. 1e9

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let all_units (w : Workloads.t) = (Workloads.program w).Ast.punits

(* every (unit, analysis env) pair of a workload under a config *)
let envs_of ?config ?(interproc = true) (w : Workloads.t) =
  let p = Workloads.program w in
  if interproc then
    let summary = Interproc.Summary.analyze p in
    List.map
      (fun u -> Interproc.Summary.env_for ?config summary u)
      p.Ast.punits
  else List.map (fun u -> Depenv.make ?config u) p.Ast.punits

let count_parallel envs =
  List.fold_left
    (fun acc env ->
      let ddg = Ddg.compute env in
      acc
      + List.length
          (List.filter
             (fun (l : Loopnest.loop) ->
               Ddg.parallelizable env ddg l.Loopnest.lstmt.Ast.sid)
             (Loopnest.loops env.Depenv.nest)))
    0 envs

let count_loops envs =
  List.fold_left
    (fun acc env -> acc + List.length (Loopnest.loops env.Depenv.nest))
    0 envs

(* Mark every safely parallelizable loop PARALLEL DO in a session. *)
let auto_parallelize (sess : Ped.Session.t) =
  List.iter
    (fun (l : Loopnest.loop) ->
      let sid = l.Loopnest.lstmt.Ast.sid in
      if Ped.Session.is_parallelizable sess sid then
        ignore
          (Ped.Session.transform sess "parallelize"
             (Transform.Catalog.On_loop sid)))
    (Ped.Session.loops sess)

let speedup_at p program =
  let machine = Perf.Machine.with_processors p Perf.Machine.default in
  let seq = Sim.Interp.run ~machine ~honor_parallel:false program in
  let par = Sim.Interp.run ~machine ~honor_parallel:true program in
  seq.Sim.Interp.cycles /. Float.max 1.0 par.Sim.Interp.cycles

(* ------------------------------------------------------------------ *)
(* Table 1: workload inventory                                         *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header
    "Table 1: the workload suite (programs, size, loops) - cf. the programs \
     table of the Ped evaluations";
  Printf.printf "%-10s %6s %6s %6s %6s  %s\n" "program" "lines" "units"
    "loops" "depth" "phenomenon";
  List.iter
    (fun (w : Workloads.t) ->
      let lines =
        List.length
          (List.filter
             (fun l -> String.trim l <> "")
             (String.split_on_char '\n' w.Workloads.source))
      in
      let units = all_units w in
      let nests = List.map (fun u -> Loopnest.build u) units in
      let loops =
        List.fold_left (fun acc n -> acc + List.length (Loopnest.loops n)) 0 nests
      in
      let depth =
        List.fold_left (fun acc n -> max acc (Loopnest.max_depth n)) 0 nests
      in
      Printf.printf "%-10s %6d %6d %6d %6d  %s\n" w.Workloads.name lines
        (List.length units) loops depth w.Workloads.phenomenon)
    Workloads.all

(* ------------------------------------------------------------------ *)
(* Table 2: dependence-test hierarchy effectiveness                    *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header
    "Table 2: dependence testing - reference pairs disposed of by each test \
     (the cheap tests dominate, as in 'Practical Dependence Testing')";
  let tests =
    [ "ziv"; "strong-siv"; "weak-zero-siv"; "weak-crossing-siv"; "exact-siv";
      "gcd"; "banerjee"; "delta-inconsistent" ]
  in
  Printf.printf "%-10s %6s" "program" "pairs";
  List.iter (fun t -> Printf.printf " %7s" (String.sub t 0 (min 7 (String.length t)))) tests;
  Printf.printf " %7s %7s\n" "proven" "pending";
  let totals = Hashtbl.create 8 in
  let tp = ref 0 and tproven = ref 0 and tpending = ref 0 in
  List.iter
    (fun (w : Workloads.t) ->
      let stats =
        List.map (fun env -> (Ddg.compute env).Ddg.stats) (envs_of w)
      in
      let pairs = List.fold_left (fun a s -> a + s.Ddg.pairs_tested) 0 stats in
      let by t =
        List.fold_left
          (fun a s -> a + Option.value ~default:0 (List.assoc_opt t s.Ddg.disproved))
          0 stats
      in
      let proven = List.fold_left (fun a s -> a + s.Ddg.proven) 0 stats in
      let pending = List.fold_left (fun a s -> a + s.Ddg.pending) 0 stats in
      tp := !tp + pairs;
      tproven := !tproven + proven;
      tpending := !tpending + pending;
      Printf.printf "%-10s %6d" w.Workloads.name pairs;
      List.iter
        (fun t ->
          let n = by t in
          Hashtbl.replace totals t (n + Option.value ~default:0 (Hashtbl.find_opt totals t));
          Printf.printf " %7d" n)
        tests;
      Printf.printf " %7d %7d\n" proven pending)
    Workloads.all;
  Printf.printf "%-10s %6d" "TOTAL" !tp;
  List.iter
    (fun t -> Printf.printf " %7d" (Option.value ~default:0 (Hashtbl.find_opt totals t)))
    tests;
  Printf.printf " %7d %7d\n" !tproven !tpending;
  (* The workload pairs are mostly genuine dependences; the classic
     evaluation of the hierarchy runs it over subscript-pair patterns
     (Goff/Kennedy/Tseng style).  Corpus below: one kernel per
     pattern, showing the deciding test. *)
  Printf.printf "\nsubscript-pair corpus (which test decides):\n";
  Printf.printf "  %-34s %-12s %s\n" "pattern" "outcome" "decided by";
  let corpus =
    [
      ("A(I) vs A(I)", "A(I) = A(I) + 1.0", "1, 10");
      ("A(I) vs A(I-1)", "A(I) = A(I-1) + 1.0", "2, 10");
      ("A(2I) vs A(2I+1)", "A(2*I) = A(2*I+1) + 1.0", "1, 10");
      ("A(I) vs A(I+20), trip 10", "A(I) = A(I+20) + 1.0", "1, 10");
      ("A(I+10) vs A(5), trip 5", "A(I+10) = A(5) + 1.0", "1, 5");
      ("A(I) vs A(30-I), trip 10", "A(I) = A(30-I) + 1.0", "1, 10");
      ("A(2I) vs A(I+100), trip 10", "A(2*I) = A(I+100) + 1.0", "1, 10");
      ("A(I) vs A(I+M), M unknown", "A(I) = A(I+M) + 1.0", "1, 10");
      ("A(IDX(I)) vs A(IDX(I))", "A(IDX(I)) = A(IDX(I)) + 1.0", "1, 10");
    ]
  in
  List.iter
    (fun (label, stmt, bounds) ->
      let src =
        Printf.sprintf
          "      PROGRAM T\n      REAL A(200)\n      INTEGER IDX(200), M\n      DO I = %s\n        %s\n      ENDDO\n      END\n"
          bounds stmt
      in
      let u = List.hd (Parser.parse_program ~file:"c.f" src).Ast.punits in
      let env = Depenv.make u in
      let g = Ddg.compute env in
      let st = g.Ddg.stats in
      let outcome, why =
        if st.Ddg.disproved <> [] then
          ( "independent",
            String.concat ","
              (List.map (fun (t, n) -> Printf.sprintf "%s x%d" t n)
                 st.Ddg.disproved) )
        else if st.Ddg.proven > 0 then ("dependent", "exact (proven)")
        else if st.Ddg.pending > 0 then ("assumed", "no test applies (pending)")
        else ("independent", "same-iteration only")
      in
      Printf.printf "  %-34s %-12s %s\n" label outcome why)
    corpus;
  (* two-loop patterns *)
  List.iter
    (fun (label, stmt) ->
      let src =
        Printf.sprintf
          "      PROGRAM T\n      REAL A(200), B(40,40)\n      DO I = 1, 10\n        DO J = 1, 10\n          %s\n        ENDDO\n      ENDDO\n      END\n"
          stmt
      in
      let u = List.hd (Parser.parse_program ~file:"c.f" src).Ast.punits in
      let env = Depenv.make u in
      let g = Ddg.compute env in
      let st = g.Ddg.stats in
      let outcome, why =
        if st.Ddg.disproved <> [] then
          ( "independent",
            String.concat ","
              (List.map (fun (t, n) -> Printf.sprintf "%s x%d" t n)
                 st.Ddg.disproved) )
        else if st.Ddg.proven > 0 then ("dependent", "exact (proven)")
        else if st.Ddg.pending > 0 then ("assumed", "no test applies (pending)")
        else ("independent", "same-iteration only")
      in
      Printf.printf "  %-34s %-12s %s\n" label outcome why)
    [
      ("A(2I+4J) vs A(2I+4J+1)", "A(2*I + 4*J) = A(2*I + 4*J + 1) + 1.0");
      ("A(I+J) vs A(I+J+100)", "A(I + J) = A(I + J + 100) + 1.0");
      ("B(I,I) vs B(I-1,I-2)", "B(I,I) = B(I-1,I-2) + 1.0");
      ("B(I,J) vs B(J,I)", "B(I,J) = B(J,I) + 1.0");
    ]

(* ------------------------------------------------------------------ *)
(* Table 3: analysis ablation                                          *)
(* ------------------------------------------------------------------ *)

let table3 () =
  header
    "Table 3: parallelizable loops as analyses are added (each column adds \
     one analysis; the Ped evaluation's 'which analyses matter')";
  let stages =
    [
      ("deptest", Depenv.base_config, false);
      ("+const", { Depenv.base_config with Depenv.use_constants = true }, false);
      ( "+symb",
        { Depenv.base_config with Depenv.use_constants = true;
          use_symbolics = true },
        false );
      ("+scalar", Depenv.full_config, false);
      ("+interp", Depenv.full_config, true);
    ]
  in
  Printf.printf "%-10s %6s" "program" "loops";
  List.iter (fun (n, _, _) -> Printf.printf " %8s" n) stages;
  Printf.printf " %8s\n" "+assert";
  List.iter
    (fun (w : Workloads.t) ->
      let total = count_loops (envs_of w) in
      Printf.printf "%-10s %6d" w.Workloads.name total;
      List.iter
        (fun (_, config, interproc) ->
          Printf.printf " %8d" (count_parallel (envs_of ~config ~interproc w)))
        stages;
      (* +assertions: run the workload's assertion script in a session,
         then count across all units *)
      let with_asserts =
        let sess =
          Ped.Session.load (Workloads.program w)
            ~unit_name:(Workloads.main_unit w)
        in
        ignore (Ped.Command.script sess w.Workloads.assertion_script);
        List.fold_left
          (fun acc (u : Ast.program_unit) ->
            match Ped.Session.focus sess u.Ast.uname with
            | Ok () ->
              acc + List.length (Ped.Session.parallelizable_loops sess)
            | Error _ -> acc)
          0
          (Ped.Session.program sess).Ast.punits
      in
      Printf.printf " %8d\n" with_asserts)
    Workloads.all

(* ------------------------------------------------------------------ *)
(* Table 4: transformation diagnosis matrix                            *)
(* ------------------------------------------------------------------ *)

let table4 () =
  header
    "Table 4: power-steering diagnoses over every loop of the suite \
     (applicable / safe / profitable)";
  let counts = Hashtbl.create 16 in
  let bump name (a, s, p) =
    let a0, s0, p0 =
      Option.value ~default:(0, 0, 0) (Hashtbl.find_opt counts name)
    in
    Hashtbl.replace counts name
      ( (a0 + if a then 1 else 0),
        (s0 + if s then 1 else 0),
        p0 + if p then 1 else 0 )
  in
  let record name (d : Transform.Diagnosis.t) =
    bump name
      (d.Transform.Diagnosis.applicable, d.Transform.Diagnosis.safe,
       d.Transform.Diagnosis.profitable)
  in
  List.iter
    (fun (w : Workloads.t) ->
      List.iter
        (fun env ->
          let ddg = Ddg.compute env in
          let loops = Loopnest.loops env.Depenv.nest in
          List.iter
            (fun (l : Loopnest.loop) ->
              let sid = l.Loopnest.lstmt.Ast.sid in
              record "parallelize" (Transform.Parallelize.diagnose env ddg sid);
              record "interchange" (Transform.Interchange.diagnose env ddg sid);
              record "distribute" (Transform.Distribute.diagnose env ddg sid);
              record "reverse" (Transform.Reverse.diagnose env ddg sid);
              record "skew" (Transform.Skew.diagnose env ddg sid ~factor:1);
              record "strip" (Transform.Strip_mine.diagnose env ddg sid ~block:4);
              record "unroll" (Transform.Unroll.diagnose env ddg sid ~factor:2);
              record "tile" (Transform.Tile.diagnose env ddg sid ~block:4);
              record "normalize" (Transform.Normalize_loop.diagnose env ddg sid);
              record "peel" (Transform.Peel.diagnose env ddg sid ~which:Transform.Peel.First))
            loops;
          (* fusion over adjacent sibling loop pairs *)
          let rec pairs = function
            | ({ Ast.node = Ast.Do _; _ } as a)
              :: ({ Ast.node = Ast.Do _; _ } as b)
              :: rest ->
              record "fuse" (Transform.Fuse.diagnose env ddg a.Ast.sid b.Ast.sid);
              pairs (b :: rest)
            | _ :: rest -> pairs rest
            | [] -> ()
          in
          pairs env.Depenv.punit.Ast.body)
        (envs_of w))
    Workloads.all;
  Printf.printf "%-14s %10s %10s %10s\n" "transformation" "applicable" "safe"
    "profitable";
  List.iter
    (fun name ->
      match Hashtbl.find_opt counts name with
      | Some (a, s, p) -> Printf.printf "%-14s %10d %10d %10d\n" name a s p
      | None -> ())
    [ "parallelize"; "interchange"; "distribute"; "fuse"; "reverse"; "skew";
      "strip"; "unroll"; "tile"; "normalize"; "peel" ]

(* ------------------------------------------------------------------ *)
(* Table 5: simulated speedups after editor parallelization            *)
(* ------------------------------------------------------------------ *)

let table5 () =
  header
    "Table 5: simulated speedup after Ped parallelization, per processor \
     count (DOALL-heavy kernels scale; recurrence-bound ones don't)";
  let procs = [ 1; 2; 4; 8; 16 ] in
  Printf.printf "%-10s" "program";
  List.iter (fun p -> Printf.printf " %7s" (Printf.sprintf "P=%d" p)) procs;
  Printf.printf "\n";
  List.iter
    (fun (w : Workloads.t) ->
      let sess =
        Ped.Session.load (Workloads.program w)
          ~unit_name:(Workloads.main_unit w)
      in
      ignore (Ped.Command.script sess w.Workloads.assertion_script);
      List.iter
        (fun (u : Ast.program_unit) ->
          match Ped.Session.focus sess u.Ast.uname with
          | Ok () -> auto_parallelize sess
          | Error _ -> ())
        (Ped.Session.program sess).Ast.punits;
      let program = (Ped.Session.program sess) in
      Printf.printf "%-10s" w.Workloads.name;
      List.iter
        (fun p -> Printf.printf " %7.2f" (speedup_at p program))
        procs;
      Printf.printf "\n")
    Workloads.all

(* ------------------------------------------------------------------ *)
(* Figure 1: estimator navigation vs simulator                         *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  header
    "Figure 1: performance-estimator loop ranking (predicted share) vs \
     simulated share - the 'which loop next' navigation aid";
  List.iter
    (fun name ->
      let w = Option.get (Workloads.by_name name) in
      let p = Workloads.program w in
      let u = List.find (fun (u : Ast.program_unit) -> u.Ast.kind = Ast.Main) p.Ast.punits in
      let env = Depenv.make u in
      let outcome = Sim.Interp.run ~honor_parallel:false p in
      let total = Float.max 1.0 outcome.Sim.Interp.cycles in
      Printf.printf "%s:\n" name;
      Printf.printf "  %-22s %10s %10s\n" "loop" "predicted" "simulated";
      List.iter
        (fun ((l : Loopnest.loop), _, share) ->
          let sid = l.Loopnest.lstmt.Ast.sid in
          let measured =
            Option.value ~default:0.0
              (List.assoc_opt sid outcome.Sim.Interp.loop_cycles)
            /. total
          in
          Printf.printf "  %-22s %9.1f%% %9.1f%%\n"
            (Printf.sprintf "s%d DO %s (depth %d)" sid
               l.Loopnest.header.Ast.dvar l.Loopnest.depth)
            (100.0 *. share) (100.0 *. measured))
        (Perf.Estimator.rank_loops env))
    [ "matmul"; "jacobi"; "tridiag" ]

(* ------------------------------------------------------------------ *)
(* Figure 2: view filtering                                            *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  header
    "Figure 2: dependence-pane size under view filters (filtering is what \
     makes the pane usable on real loops)";
  Printf.printf "%-10s %8s %8s %8s %8s %8s\n" "program" "all" "default"
    "carried" "noscalar" "pending";
  List.iter
    (fun name ->
      let w = Option.get (Workloads.by_name name) in
      let sess =
        Ped.Session.load (Workloads.program w)
          ~unit_name:(Workloads.main_unit w)
      in
      let count filter =
        Ped.Session.set_dep_filter sess filter;
        List.length (Ped.Session.visible_deps sess)
      in
      let open Ped.Filter in
      Printf.printf "%-10s %8d %8d %8d %8d %8d\n" name (count show_all)
        (count default_dep_filter)
        (count { default_dep_filter with f_carried_only = true })
        (count { default_dep_filter with f_hide_scalar = true })
        (count
           { default_dep_filter with f_status = Some Ped.Marking.Pending }))
    [ "matmul"; "sor"; "tridiag"; "indexarr"; "callnest" ]

(* ------------------------------------------------------------------ *)
(* Figure 3: user assertions                                           *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header
    "Figure 3: dependence marking and user assertions - pending dependences \
     and parallel loops before/after the user speaks up";
  Printf.printf "%-10s %-22s %9s %9s %9s %9s\n" "program" "assertion"
    "pend.bef" "pend.aft" "par.bef" "par.aft";
  List.iter
    (fun (name, unit_name, cmds, label) ->
      let w = Option.get (Workloads.by_name name) in
      let sess = Ped.Session.load (Workloads.program w) ~unit_name in
      let pending () =
        List.length
          (List.filter
             (fun (d : Ddg.dep) ->
               (not d.Ddg.is_scalar)
               && d.Ddg.kind <> Ddg.Control
               && Ped.Marking.status_of (Ped.Session.marking sess) d
                  = Ped.Marking.Pending)
             (Ped.Session.ddg sess).Ddg.deps)
      in
      let par () = List.length (Ped.Session.parallelizable_loops sess) in
      let pb = pending () and parb = par () in
      List.iter (fun c -> ignore (Ped.Command.run sess c)) cmds;
      Printf.printf "%-10s %-22s %9d %9d %9d %9d\n" name label pb (pending ())
        parb (par ()))
    [
      ("symbounds", "SHIFT", [ "assert M = 64" ], "M = 64");
      ("indexarr", "IDXARR", [ "assert perm IDX" ], "IDX is a permutation");
    ]

(* ------------------------------------------------------------------ *)
(* Figure 4: transformation case studies                               *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header
    "Figure 4: transformation case studies on 8 processors - each recipe \
     beats parallelize-only on its kernel";
  let study name setup =
    let w = Option.get (Workloads.by_name name) in
    let base =
      let sess =
        Ped.Session.load (Workloads.program w)
          ~unit_name:(Workloads.main_unit w)
      in
      auto_parallelize sess;
      speedup_at 8 (Ped.Session.program sess)
    in
    let transformed =
      let sess =
        Ped.Session.load (Workloads.program w)
          ~unit_name:(Workloads.main_unit w)
      in
      setup sess;
      auto_parallelize sess;
      speedup_at 8 (Ped.Session.program sess)
    in
    (base, transformed)
  in
  Printf.printf "%-10s %-24s %14s %14s\n" "program" "recipe" "parallel-only"
    "with recipe";
  let matmul_base, matmul_tr =
    study "matmul" (fun sess ->
        let k =
          List.find
            (fun (l : Loopnest.loop) -> l.Loopnest.header.Ast.dvar = "K")
            (Ped.Session.loops sess)
        in
        ignore
          (Ped.Session.transform sess "interchange"
             (Transform.Catalog.On_loop k.Loopnest.lstmt.Ast.sid)))
  in
  Printf.printf "%-10s %-24s %13.2fx %13.2fx\n" "matmul" "interchange"
    matmul_base matmul_tr;
  let sor_base, sor_tr =
    study "sor" (fun sess ->
        let i =
          List.find
            (fun (l : Loopnest.loop) ->
              l.Loopnest.header.Ast.dvar = "I" && l.Loopnest.depth = 2)
            (Ped.Session.loops sess)
        in
        let sid = i.Loopnest.lstmt.Ast.sid in
        ignore
          (Ped.Session.transform sess "skew"
             (Transform.Catalog.With_factor (sid, 1)));
        ignore
          (Ped.Session.transform sess "interchange"
             (Transform.Catalog.On_loop sid)))
  in
  Printf.printf "%-10s %-24s %13.2fx %13.2fx\n" "sor" "skew + interchange"
    sor_base sor_tr;
  let recur_base, recur_tr =
    study "recur" (fun sess ->
        let blocked =
          List.find
            (fun (l : Loopnest.loop) ->
              not (Ped.Session.is_parallelizable sess l.Loopnest.lstmt.Ast.sid))
            (Ped.Session.loops sess)
        in
        ignore
          (Ped.Session.transform sess "distribute"
             (Transform.Catalog.On_loop blocked.Loopnest.lstmt.Ast.sid)))
  in
  Printf.printf "%-10s %-24s %13.2fx %13.2fx\n" "recur" "distribution"
    recur_base recur_tr

(* ------------------------------------------------------------------ *)
(* Ablation: machine-model sensitivity                                 *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header
    "Ablation: fork/join cost sensitivity at P=8 - the granularity \
     trade-off the editor's profitability advice encodes";
  let fork_costs = [ 0.0; 50.0; 200.0; 800.0 ] in
  Printf.printf "%-10s" "program";
  List.iter (fun f -> Printf.printf " %9s" (Printf.sprintf "fork=%.0f" f)) fork_costs;
  Printf.printf "\n";
  List.iter
    (fun name ->
      let w = Option.get (Workloads.by_name name) in
      let sess =
        Ped.Session.load (Workloads.program w)
          ~unit_name:(Workloads.main_unit w)
      in
      auto_parallelize sess;
      let program = (Ped.Session.program sess) in
      Printf.printf "%-10s" name;
      List.iter
        (fun fork ->
          let machine =
            { (Perf.Machine.with_processors 8 Perf.Machine.default) with
              Perf.Machine.fork_join = fork }
          in
          let seq = Sim.Interp.run ~machine ~honor_parallel:false program in
          let par = Sim.Interp.run ~machine ~honor_parallel:true program in
          Printf.printf " %9.2f"
            (seq.Sim.Interp.cycles /. Float.max 1.0 par.Sim.Interp.cycles))
        fork_costs;
      Printf.printf "\n")
    [ "daxpy"; "matmul"; "redblack"; "gauss"; "jacobi" ];
  (* scheduling: block vs cyclic — per-iteration work must vary within
     one parallel loop for the policy to matter, so the demo includes a
     triangular kernel alongside a uniform one *)
  Printf.printf
    "\nscheduling (P=8): block vs cyclic iteration assignment\n";
  Printf.printf "%-10s %9s %9s\n" "kernel" "block" "cyclic";
  let programs =
    [
      ( "triangle",
        "      PROGRAM TRI\n      REAL A(64,64)\n      REAL S\n      PARALLEL DO I = 1, 64\n        DO J = 1, I\n          A(I,J) = FLOAT(I + J)\n        ENDDO\n      ENDDO\n      S = 0.0\n      DO I = 1, 64\n        S = S + A(I,1)\n      ENDDO\n      PRINT *, S\n      END\n" );
      ( "uniform",
        "      PROGRAM UNI\n      REAL A(64,64)\n      REAL S\n      PARALLEL DO I = 1, 64\n        DO J = 1, 64\n          A(I,J) = FLOAT(I + J)\n        ENDDO\n      ENDDO\n      S = 0.0\n      DO I = 1, 64\n        S = S + A(I,1)\n      ENDDO\n      PRINT *, S\n      END\n" );
    ]
  in
  List.iter
    (fun (name, src) ->
      let program = Parser.parse_program ~file:(name ^ ".f") src in
      let speed sched =
        let machine =
          Perf.Machine.with_schedule sched
            (Perf.Machine.with_processors 8 Perf.Machine.default)
        in
        let seq = Sim.Interp.run ~machine ~honor_parallel:false program in
        let par = Sim.Interp.run ~machine ~honor_parallel:true program in
        seq.Sim.Interp.cycles /. Float.max 1.0 par.Sim.Interp.cycles
      in
      Printf.printf "%-10s %9.2f %9.2f\n" name (speed Perf.Machine.Block)
        (speed Perf.Machine.Cyclic))
    programs

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let microbench () =
  header "Microbenchmarks (bechamel): cost of the editor's machinery";
  let open Bechamel in
  let w = Option.get (Workloads.by_name "matmul") in
  let src = w.Workloads.source in
  let program = Workloads.program w in
  let main_u = List.hd program.Ast.punits in
  let env = Depenv.make main_u in
  let ddg = Ddg.compute env in
  let k =
    List.find
      (fun (l : Loopnest.loop) -> l.Loopnest.header.Ast.dvar = "K")
      (Loopnest.loops env.Depenv.nest)
  in
  let tests =
    [
      Test.make ~name:"parse (matmul)"
        (Staged.stage (fun () ->
             ignore (Parser.parse_program ~file:"m.f" src)));
      Test.make ~name:"analyze unit (all dataflow)"
        (Staged.stage (fun () -> ignore (Depenv.make main_u)));
      Test.make ~name:"dependence graph"
        (Staged.stage (fun () -> ignore (Ddg.compute env)));
      Test.make ~name:"interchange diagnose"
        (Staged.stage (fun () ->
             ignore (Transform.Interchange.diagnose env ddg k.Loopnest.lstmt.Ast.sid)));
      Test.make ~name:"estimator rank_loops"
        (Staged.stage (fun () -> ignore (Perf.Estimator.rank_loops env)));
      Test.make ~name:"full session load (interproc)"
        (Staged.stage (fun () ->
             ignore
               (Ped.Session.load (Workloads.program w)
                  ~unit_name:(Workloads.main_unit w))));
      Test.make ~name:"simulate matmul"
        (Staged.stage (fun () -> ignore (Sim.Interp.run program)));
      (let prob =
         {
           Dtest.nloops = 2;
           trips = [| Some 100; Some 100 |];
           trips_exact = [| true; true |];
           lo_known = [| true; true |];
           dims =
             [
               { Dtest.a = [| 1; 0 |]; b = [| 1; 0 |]; c = 1; usable = true };
               { Dtest.a = [| 0; 1 |]; b = [| 0; 1 |]; c = -1; usable = true };
             ];
         }
       in
       Test.make ~name:"dependence test (2-loop pair)"
         (Staged.stage (fun () -> ignore (Dtest.solve prob))));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "%-32s %14s\n" "operation" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
            let pretty =
              if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
              else Printf.sprintf "%8.0f ns" ns
            in
            Printf.printf "%-32s %14s\n" name pretty
          | _ -> Printf.printf "%-32s %14s\n" name "n/a")
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Table 6: predicted vs measured speedup on the multicore runtime     *)
(* ------------------------------------------------------------------ *)

(* Auto-parallelize every unit of a workload (assertion script first),
   returning the annotated program — the same pipeline ped --execute
   uses. *)
let parallelized_program (w : Workloads.t) =
  let sess =
    Ped.Session.load (Workloads.program w) ~unit_name:(Workloads.main_unit w)
  in
  List.iter
    (fun cmd -> ignore (Ped.Command.run sess cmd))
    w.Workloads.assertion_script;
  List.iter
    (fun (u : Ast.program_unit) ->
      match Ped.Session.focus sess u.Ast.uname with
      | Ok () -> auto_parallelize sess
      | Error _ -> ())
    (Ped.Session.program sess).Ast.punits;
  (Ped.Session.program sess)

let best_wall ?(reps = 3) ~domains program =
  let best = ref infinity in
  for _ = 1 to reps do
    let o = Runtime.Exec.run ~domains program in
    if o.Runtime.Exec.wall_s < !best then best := o.Runtime.Exec.wall_s
  done;
  !best

let table6_json = "BENCH_table6.json"

let geomean = function
  | [] -> 0.0
  | xs ->
    exp
      (List.fold_left (fun a x -> a +. log (Float.max 1e-12 x)) 0.0 xs
      /. float_of_int (List.length xs))

(* The compiled column: best-of-[reps] wall of the loaded plugin on a
   [p]-domain pool, with every run diffed against the sequential
   simulator baseline (the identity gate samples all reps, not one). *)
let compiled_wall built ~domains ~reps (base : Sim.Interp.outcome) =
  Runtime.Pool.with_pool domains (fun pool ->
      let best = ref infinity and ok = ref true in
      for _ = 1 to reps do
        match
          Codegen.Compile.run built ~pool:(Some pool)
            ~schedule:Runtime.Pool.Chunk
        with
        | Error _ -> ok := false
        | Ok r ->
          if r.Codegen.Compile.wall_s < !best then
            best := r.Codegen.Compile.wall_s;
          if
            not
              (Sim.Interp.outputs_match ~tol:1e-4 r.Codegen.Compile.out_lines
                 base.Sim.Interp.output
              && Sim.Interp.stores_match r.Codegen.Compile.store
                   base.Sim.Interp.final_store)
          then ok := false
      done;
      (!best, !ok))

let table6_run ~smoke label =
  header
    "Table 6: predicted (simulator cycles) vs measured (multicore runtime \
     wall clock) vs compiled (native codegen) speedup";
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "  this machine offers %d core(s); measured speedups cannot exceed that, \
     while predictions assume the abstract machine really has P processors; \
     comp@P is the native-compiled speedup over the sequential interpreter\n"
    cores;
  let wls = if smoke then [ List.hd Workloads.all ] else Workloads.all in
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let reps = 3 in
  let identity_ok = ref true in
  let toolchain_note = ref None in
  let cg_speedups = ref [] in
  Printf.printf "%-10s" "program";
  List.iter (fun p -> Printf.printf "  pred@%d meas@%d  comp@%d" p p p)
    domain_counts;
  Printf.printf "\n";
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let base = Workloads.program w in
        let par = parallelized_program w in
        let sim_base = Sim.Interp.run ~honor_parallel:false base in
        let seq_wall = best_wall ~reps ~domains:1 base in
        let built =
          match Codegen.Compile.build par with
          | Ok b -> Some b
          | Error (Codegen.Compile.Toolchain m) ->
            toolchain_note := Some m;
            None
          | Error e ->
            (* a table6 kernel outside the subset (or failing to build)
               is a regression: every kernel compiles today *)
            Printf.eprintf "%s: %s: %s\n" label w.Workloads.name
              (Codegen.Compile.error_to_string e);
            identity_ok := false;
            None
        in
        Printf.printf "%-10s" w.Workloads.name;
        let best_cg = ref infinity in
        let cols =
          List.map
            (fun p ->
              let pred = speedup_at p par in
              (* the static estimator's promise, recorded next to the
                 simulated and measured columns so prediction drift is
                 visible in the JSON *)
              let est = Perfdebug.Driver.predicted_of ~processors:p par in
              let meas =
                seq_wall /. Float.max 1e-9 (best_wall ~reps ~domains:p par)
              in
              let cg =
                match built with
                | None -> None
                | Some b ->
                  let wall, ok = compiled_wall b ~domains:p ~reps sim_base in
                  if not ok then begin
                    Printf.eprintf
                      "%s: %s compiled run diverged at %d domains\n" label
                      w.Workloads.name p;
                    identity_ok := false
                  end;
                  if wall < !best_cg then best_cg := wall;
                  Some (wall, seq_wall /. Float.max 1e-9 wall, ok)
              in
              (match cg with
              | Some (_, s, _) -> Printf.printf "  %6.2f %6.2f %7.1f" pred meas s
              | None -> Printf.printf "  %6.2f %6.2f %7s" pred meas "-");
              (p, pred, est, meas, cg))
            domain_counts
        in
        Printf.printf "\n%!";
        if built <> None then
          cg_speedups := (seq_wall /. Float.max 1e-9 !best_cg) :: !cg_speedups;
        (w.Workloads.name, seq_wall, cols))
      wls
  in
  let gm = geomean !cg_speedups in
  if !cg_speedups <> [] then
    Printf.printf
      "compiled speedup over the interpreter: %.1fx geomean (best schedule \
       point per kernel)\n"
    gm;
  Jout.write table6_json
    (Jout.Obj
       [
         ("experiment", Jout.Str label);
         ("cores", Jout.Int cores);
         ("reps", Jout.Int reps);
         ( "programs",
           Jout.List
             (List.map
                (fun (name, seq_wall, cols) ->
                  Jout.Obj
                    [
                      ("name", Jout.Str name);
                      ("interp_seq_wall_s", Jout.Float seq_wall);
                      ( "columns",
                        Jout.List
                          (List.map
                             (fun (p, pred, est, meas, cg) ->
                               Jout.Obj
                                 ([
                                    ("domains", Jout.Int p);
                                    ("predicted", Jout.Float pred);
                                    ("estimator_predicted", Jout.Float est);
                                    ("measured", Jout.Float meas);
                                  ]
                                 @
                                 match cg with
                                 | None -> [ ("compiled", Jout.Null) ]
                                 | Some (wall, s, ok) ->
                                   [
                                     ("compiled_wall_s", Jout.Float wall);
                                     ("compiled_speedup", Jout.Float s);
                                     ("identical", Jout.Bool ok);
                                   ]))
                             cols) );
                    ])
                rows) );
         ("compiled_geomean_speedup", Jout.Float gm);
         ("identity_ok", Jout.Bool !identity_ok);
         ( "toolchain",
           match !toolchain_note with
           | None -> Jout.Str "available"
           | Some m -> Jout.Str ("missing: " ^ m) );
       ]);
  (* identity gate: always enforced — a compiled kernel that computes
     something else is wrong at any speed *)
  if not !identity_ok then begin
    Printf.eprintf "%s: compiled runs diverged from the interpreter\n" label;
    exit 1
  end;
  (match !toolchain_note with
  | Some m ->
    Printf.printf
      "note: no native toolchain (%s) - compiled column and speedup gate \
       skipped\n"
      m
  | None ->
    (* speedup gate: native code must beat the tree-walking interpreter
       by a wide margin wherever there are cores to run it *)
    if cores >= 2 && gm < 5.0 then begin
      Printf.eprintf
        "%s: compiled geomean speedup %.1fx < 5x over the interpreter on a \
         %d-core machine\n"
        label gm cores;
      exit 1
    end
    else if cores < 2 then
      Printf.printf
        "note: single-core machine (recommended_domain_count %d) - speedup \
         gate skipped, identity gate enforced\n"
        cores)

let table6 () = table6_run ~smoke:false "table6"
let table6_smoke () = table6_run ~smoke:true "table6-smoke"

let calibrate_exp () =
  header
    "Calibration: per-op cycle weights fitted from measured multicore-runtime \
     executions (one sample per workload)";
  let progs = List.map Workloads.program Workloads.all in
  let fitted = Runtime.Calibrate.fit progs in
  let show label (m : Perf.Machine.t) =
    Printf.printf
      "%-11s %-24s flop %6.2f  mem %6.2f  intrinsic %6.2f  loop %6.2f  call \
       %6.2f\n"
      label m.Perf.Machine.name m.Perf.Machine.flop_cost m.Perf.Machine.mem_cost
      m.Perf.Machine.intrinsic_cost m.Perf.Machine.loop_overhead
      m.Perf.Machine.call_overhead
  in
  show "default:" Perf.Machine.default;
  show "calibrated:" fitted

(* ------------------------------------------------------------------ *)
(* editburst: incremental engine vs full reanalysis on an edit burst   *)
(* ------------------------------------------------------------------ *)

(* A scripted editing session: the workload's assertions, then bursts
   of single-statement edit / undo / redo.  The edit replaces a
   statement with its own pretty-printed text — semantically identical
   but carrying fresh statement ids, which is exactly what an
   interactive edit looks like to the analyses. *)

let focus_unit_of sess =
  let name = Ped.Session.unit_name sess in
  List.find
    (fun (u : Ast.program_unit) -> String.equal u.Ast.uname name)
    (Ped.Session.program sess).Ast.punits

let first_assign sess =
  Ast.fold_stmts
    (fun acc (s : Ast.stmt) ->
      match (acc, s.Ast.node) with
      | None, Ast.Assign _ -> Some s
      | _ -> acc)
    None (focus_unit_of sess).Ast.body

let ok_exn what = function Ok _ -> () | Error e -> failwith (what ^ ": " ^ e)

let edit_burst sess =
  match first_assign sess with
  | None -> ()
  | Some s ->
    let text = Pretty.stmt_to_string s in
    ok_exn "edit" (Ped.Session.edit_stmt sess s.Ast.sid text);
    ok_exn "undo" (Ped.Session.undo sess);
    ok_exn "redo" (Ped.Session.redo sess)

let drive_asserts sess (w : Workloads.t) =
  List.iter
    (fun cmd -> ignore (Ped.Command.run sess cmd))
    w.Workloads.assertion_script

let drive_bursts sess ~bursts =
  for _ = 1 to bursts do
    edit_burst sess
  done

(* Structural-identity oracle: the session's engine-served graph must
   equal a from-scratch analysis of its current program + assertions.
   (Graphs are pure data; environments hold closures, so the graph and
   its statistics are the comparable artifact.) *)
let scratch_equal sess =
  let u = focus_unit_of sess in
  let scratch_env =
    match Ped.Session.interproc sess with
    | Some _ ->
      let summary = Interproc.Summary.analyze (Ped.Session.program sess) in
      Interproc.Summary.env_for ~config:(Ped.Session.config sess)
        ~asserts:(Ped.Session.assertions sess) summary u
    | None ->
      Depenv.make ~config:(Ped.Session.config sess)
        ~asserts:(Ped.Session.assertions sess) u
  in
  Ped.Session.ddg sess = Ddg.compute scratch_env

let editburst_json = "BENCH_editburst.json"

let editburst_run ~smoke () =
  header
    (Printf.sprintf
       "editburst%s: analysis work per edit burst (assert, edit, undo, redo) \
        - incremental engine vs full reanalysis"
       (if smoke then " (smoke)" else ""));
  let workloads =
    if not smoke then Workloads.all
    else
      List.filter
        (fun (w : Workloads.t) ->
          List.mem w.Workloads.name
            [ "matmul"; "jacobi"; "recur"; "callnest"; "arrpriv"; "spec77x" ])
        Workloads.all
  in
  let bursts = if smoke then 1 else 2 in
  (* per-mode measurement: (assert-phase tests, edit-phase tests,
     edit-phase seconds, final stats, session) *)
  let run_mode w program caching =
    let sess =
      Ped.Session.load ~caching program ~unit_name:(Workloads.main_unit w)
    in
    let s0 = Ped.Session.engine_stats sess in
    drive_asserts sess w;
    let sa = Ped.Session.engine_stats sess in
    let t0 = now_s () in
    drive_bursts sess ~bursts;
    let seconds = now_s () -. t0 in
    let s1 = Ped.Session.engine_stats sess in
    ( sess,
      sa.Engine.tests_run - s0.Engine.tests_run,
      s1.Engine.tests_run - sa.Engine.tests_run,
      seconds,
      s1 )
  in
  Printf.printf "%-10s %10s %10s %8s %10s %10s %8s %5s\n" "program"
    "full-edit" "inc-edit" "ratio" "full-ms" "inc-ms" "ratio" "same";
  let rows =
    List.map
      (fun (w : Workloads.t) ->
        let program = Workloads.program w in
        let base_sess, base_at, base_et, base_s, _ = run_mode w program false in
        let inc_sess, inc_at, inc_et, inc_s, inc_stats =
          run_mode w program true
        in
        let identical = scratch_equal inc_sess && scratch_equal base_sess in
        let ratio a b = float_of_int a /. float_of_int (max 1 b) in
        Printf.printf "%-10s %10d %10d %7.1fx %10.2f %10.2f %7.1fx %5s\n"
          w.Workloads.name base_et inc_et (ratio base_et inc_et)
          (base_s *. 1e3) (inc_s *. 1e3)
          (base_s /. Float.max 1e-9 inc_s)
          (if identical then "yes" else "NO");
        (w.Workloads.name, (base_at, base_et, base_s), (inc_at, inc_et, inc_s),
         inc_stats, identical))
      workloads
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let sumf f = List.fold_left (fun acc r -> acc +. f r) 0. rows in
  let base_edit = sum (fun (_, (_, t, _), _, _, _) -> t) in
  let inc_edit = sum (fun (_, _, (_, t, _), _, _) -> t) in
  let base_all = sum (fun (_, (a, t, _), _, _, _) -> a + t) in
  let inc_all = sum (fun (_, _, (a, t, _), _, _) -> a + t) in
  let base_s = sumf (fun (_, (_, _, s), _, _, _) -> s) in
  let inc_s = sumf (fun (_, _, (_, _, s), _, _) -> s) in
  let all_identical = List.for_all (fun (_, _, _, _, i) -> i) rows in
  let edit_ratio = float_of_int base_edit /. float_of_int (max 1 inc_edit) in
  let total_ratio = float_of_int base_all /. float_of_int (max 1 inc_all) in
  let time_ratio = base_s /. Float.max 1e-9 inc_s in
  Printf.printf
    "aggregate: edits %d vs %d dependence tests (%.1fx), whole session %d vs \
     %d (%.1fx), edit wall %.1f vs %.1f ms (%.1fx), results %s\n"
    base_edit inc_edit edit_ratio base_all inc_all total_ratio (base_s *. 1e3)
    (inc_s *. 1e3) time_ratio
    (if all_identical then "identical" else "DIVERGED");
  let row_json
      (name, (bat, bet, bs), (iat, iet, is), (st : Engine.stats), identical) =
    Jout.Obj
      [
        ("name", Jout.Str name);
        ("identical", Jout.Bool identical);
        ( "full",
          Jout.Obj
            [
              ("assert_tests", Jout.Int bat);
              ("edit_tests", Jout.Int bet);
              ("edit_seconds", Jout.Float bs);
            ] );
        ( "incremental",
          Jout.Obj
            [
              ("assert_tests", Jout.Int iat);
              ("edit_tests", Jout.Int iet);
              ("edit_seconds", Jout.Float is);
              ("env_hits", Jout.Int st.Engine.env_hits);
              ("env_misses", Jout.Int st.Engine.env_misses);
              ("invalidations", Jout.Int st.Engine.invalidations);
              ("summary_hits", Jout.Int st.Engine.summary_hits);
              ("summary_builds", Jout.Int st.Engine.summary_builds);
              ("ddg_bucket_hits", Jout.Int st.Engine.ddg_bucket_hits);
              ("ddg_bucket_misses", Jout.Int st.Engine.ddg_bucket_misses);
            ] );
      ]
  in
  Jout.write editburst_json
    (Jout.Obj
       [
         ("experiment", Jout.Str "editburst");
         ("smoke", Jout.Bool smoke);
         ("bursts", Jout.Int bursts);
         ("workloads", Jout.List (List.map row_json rows));
         ( "aggregate",
           Jout.Obj
             [
               ("full_edit_tests", Jout.Int base_edit);
               ("incremental_edit_tests", Jout.Int inc_edit);
               ("edit_tests_ratio", Jout.Float edit_ratio);
               ("full_total_tests", Jout.Int base_all);
               ("incremental_total_tests", Jout.Int inc_all);
               ("total_tests_ratio", Jout.Float total_ratio);
               ("full_edit_seconds", Jout.Float base_s);
               ("incremental_edit_seconds", Jout.Float inc_s);
               ("edit_time_ratio", Jout.Float time_ratio);
               ("all_identical", Jout.Bool all_identical);
             ] );
       ])

let editburst () = editburst_run ~smoke:false ()
let editburst_smoke () = editburst_run ~smoke:true ()

(* ------------------------------------------------------------------ *)
(* Fuzz smoke: a bounded run of the differential-testing oracles      *)
(* (lib/oracle) — dependence brute force, transformation semantics,   *)
(* runtime schedules — reported as JSON for CI trend tracking.        *)
(* ------------------------------------------------------------------ *)

let fuzz_json = "BENCH_fuzz.json"

let fuzz_smoke () =
  let cfg =
    {
      Oracle.Driver.default with
      Oracle.Driver.n = 40;
      seed = 42;
      corpus_dir = Some "fuzz-failures";
      progress = ignore;
    }
  in
  let t0 = now_s () in
  let s = Oracle.Driver.run cfg in
  let dt = now_s () -. t0 in
  print_string (Oracle.Driver.summary s);
  Jout.write fuzz_json
    (Jout.Obj
       [
         ("experiment", Jout.Str "fuzz-smoke");
         ("programs", Jout.Int s.Oracle.Driver.programs);
         ("rejected", Jout.Int s.Oracle.Driver.rejected);
         ("seconds", Jout.Float dt);
         ( "dependence",
           Jout.Obj
             [
               ("classes", Jout.Int s.Oracle.Driver.dep_classes);
               ("misses", Jout.Int s.Oracle.Driver.dep_misses);
               ("realized", Jout.Int s.Oracle.Driver.dep_realized);
               ("spurious", Jout.Int s.Oracle.Driver.dep_spurious);
             ] );
         ( "semantics",
           Jout.Obj
             [
               ("instances", Jout.Int s.Oracle.Driver.sem_instances);
               ("failures", Jout.Int s.Oracle.Driver.sem_failures);
               ("sequence_steps", Jout.Int s.Oracle.Driver.seq_steps);
               ("sequence_failures", Jout.Int s.Oracle.Driver.seq_failures);
             ] );
         ( "runtime",
           Jout.Obj
             [
               ("parallel_loops", Jout.Int s.Oracle.Driver.run_loops);
               ("failures", Jout.Int s.Oracle.Driver.run_failures);
             ] );
         ("green", Jout.Bool (Oracle.Driver.ok s));
       ]);
  if not (Oracle.Driver.ok s) then exit 1

(* ------------------------------------------------------------------ *)
(* telemetry-overhead: cost of the observability layer on the         *)
(* analysis path — the same edit-burst workload driven under a null   *)
(* (disabled) sink, a counters-only sink and a full recording sink.   *)
(* The disabled hot path is also measured directly, per call, and     *)
(* converted into an implied workload overhead: that number is the    *)
(* <2% gate, since there is no uninstrumented build to diff against.  *)
(* ------------------------------------------------------------------ *)

let telemetry_json = "BENCH_telemetry.json"

let telemetry_overhead () =
  header
    "telemetry-overhead: analysis cost under disabled / counters / \
     recording telemetry";
  (* per-call cost of the disabled (null-sink) hot path *)
  let null = Telemetry.null in
  let dead = Telemetry.counter null "bench.dead" in
  let per_op reps f =
    let t0 = Telemetry.now_ns () in
    for _ = 1 to reps do
      f ()
    done;
    Int64.to_float (Int64.sub (Telemetry.now_ns ()) t0) /. float_of_int reps
  in
  let ops = 10_000_000 in
  let ns_counter = per_op ops (fun () -> Telemetry.incr dead) in
  let ns_span = per_op ops (fun () -> Telemetry.span null "x" Fun.id) in
  Printf.printf "disabled hot path: %.2f ns/incr, %.2f ns/span\n" ns_counter
    ns_span;
  (* the edit-burst workload under one sink; returns seconds *)
  let drive sink =
    Telemetry.set_default sink;
    let t0 = now_s () in
    List.iter
      (fun (w : Workloads.t) ->
        let sess =
          Ped.Session.load ~telemetry:sink (Workloads.program w)
            ~unit_name:(Workloads.main_unit w)
        in
        drive_asserts sess w;
        drive_bursts sess ~bursts:1)
      Workloads.all;
    let dt = now_s () -. t0 in
    Telemetry.set_default Telemetry.null;
    dt
  in
  let median xs =
    let a = List.sort compare xs in
    List.nth a (List.length a / 2)
  in
  let reps = 5 in
  (* warm up allocators and code paths once, then interleave the modes
     so drift hits all three equally *)
  ignore (drive Telemetry.null);
  let disabled = ref [] and counters = ref [] and recording = ref [] in
  let spans_per_rep = ref 0 in
  for _ = 1 to reps do
    disabled := drive Telemetry.null :: !disabled;
    counters := drive (Telemetry.make ()) :: !counters;
    let r = Telemetry.make ~record_spans:true () in
    recording := drive r :: !recording;
    spans_per_rep := List.length (Telemetry.spans r)
  done;
  let d = median !disabled
  and c = median !counters
  and r = median !recording in
  let pct x = (x -. d) /. d *. 100. in
  (* implied cost of the disabled instrumentation: every span is two
     no-op calls' worth, every counter flush one *)
  let implied_ns = float_of_int !spans_per_rep *. ns_span in
  let disabled_pct = implied_ns /. (d *. 1e9) *. 100. in
  Printf.printf "%-10s %10s %10s\n" "mode" "median-ms" "overhead";
  Printf.printf "%-10s %10.2f %9.2f%%\n" "disabled" (d *. 1e3) disabled_pct;
  Printf.printf "%-10s %10.2f %9.2f%%\n" "counters" (c *. 1e3) (pct c);
  Printf.printf "%-10s %10.2f %9.2f%%\n" "recording" (r *. 1e3) (pct r);
  Printf.printf "(%d spans per rep when recording)\n" !spans_per_rep;
  Jout.write telemetry_json
    (Jout.Obj
       [
         ("experiment", Jout.Str "telemetry-overhead");
         ("reps", Jout.Int reps);
         ("ns_per_disabled_counter", Jout.Float ns_counter);
         ("ns_per_disabled_span", Jout.Float ns_span);
         ("spans_per_rep", Jout.Int !spans_per_rep);
         ( "median_seconds",
           Jout.Obj
             [
               ("disabled", Jout.Float d);
               ("counters", Jout.Float c);
               ("recording", Jout.Float r);
             ] );
         ( "overhead_pct",
           Jout.Obj
             [
               ("disabled", Jout.Float disabled_pct);
               ("counters", Jout.Float (pct c));
               ("recording", Jout.Float (pct r));
             ] );
         ("disabled_overhead_lt_2pct", Jout.Bool (disabled_pct < 2.));
       ]);
  if disabled_pct >= 2. then begin
    Printf.eprintf "telemetry-overhead: disabled overhead %.2f%% >= 2%%\n"
      disabled_pct;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* precision: the analysis-precision dashboard.  Per-tier disproval /  *)
(* assumed / proven counts over every unit of the workload corpus      *)
(* (straight from the DDGs' provenance records), plus the dependence   *)
(* oracle's spurious-edge rate attributed to the deciding tier over a  *)
(* generated corpus.  Written as BENCH_precision.json for CI trends.   *)
(* ------------------------------------------------------------------ *)

let precision_json = "BENCH_precision.json"

let precision_run ~fuzz_n ~small label =
  header
    (Printf.sprintf
       "Precision dashboard (%s): which tier decides, what is assumed, what \
        the oracle refutes"
       label);
  let p = Explain.Precision.create () in
  List.iter
    (fun (w : Workloads.t) ->
      let sess =
        Ped.Session.load (Workloads.program w)
          ~unit_name:(Workloads.main_unit w)
      in
      List.iter
        (fun (u : Ast.program_unit) ->
          match Ped.Session.focus sess u.Ast.uname with
          | Ok () ->
            let ddg = Ped.Session.ddg sess in
            List.iter
              (fun (tier, n) ->
                Explain.Precision.add p ~tier Explain.Provenance.Disproved n)
              (Ddg.disproved_by_tier ddg);
            List.iter
              (fun (tier, n) ->
                Explain.Precision.add p ~tier Explain.Provenance.Assumed n)
              (Ddg.assumed_by_tier ddg);
            List.iter
              (fun (tier, n) ->
                Explain.Precision.add p ~tier Explain.Provenance.Proven n)
              (Ddg.proven_by_tier ddg)
          | Error _ -> ())
        (Ped.Session.program sess).Ast.punits)
    Workloads.all;
  let cfg =
    {
      Oracle.Driver.default with
      Oracle.Driver.n = fuzz_n;
      seed = 42;
      oracles = [ Oracle.Driver.Dep ];
      gen_cfg = (if small then Oracle.Gen.small else Oracle.Gen.default);
      progress = ignore;
    }
  in
  let t0 = now_s () in
  let s = Oracle.Driver.run cfg in
  let dt = now_s () -. t0 in
  List.iter
    (fun (tier, n) -> Explain.Precision.add_spurious p ~tier n)
    s.Oracle.Driver.dep_spurious_by_tier;
  Printf.printf "%-16s %10s %10s %10s %10s\n" "tier" "disproved" "assumed"
    "proven" "spurious";
  List.iter
    (fun (tier, dis, asm, prv, spu) ->
      Printf.printf "%-16s %10d %10d %10d %10d\n" tier dis asm prv spu)
    (Explain.Precision.rows p);
  Printf.printf
    "assumed fraction: %.4f over %d surviving edges (workload corpus)\n"
    (Explain.Precision.assumed_fraction p)
    (Explain.Precision.total_edges p);
  Printf.printf
    "oracle: %d fuzz programs, %d edges realized, %d spurious (%.1fs)\n"
    s.Oracle.Driver.programs s.Oracle.Driver.dep_realized
    s.Oracle.Driver.dep_spurious dt;
  Jout.write precision_json
    (Jout.Obj
       [
         ("experiment", Jout.Str label);
         ("fuzz_programs", Jout.Int s.Oracle.Driver.programs);
         ("oracle_realized", Jout.Int s.Oracle.Driver.dep_realized);
         ("oracle_spurious", Jout.Int s.Oracle.Driver.dep_spurious);
         ("dashboard", Jout.Raw (Explain.Precision.to_json p));
       ])

let precision () = precision_run ~fuzz_n:150 ~small:false "precision"

let precision_smoke () =
  precision_run ~fuzz_n:25 ~small:true "precision-smoke"

(* ------------------------------------------------------------------ *)
(* multisession: many concurrent sessions over one shared cache — the *)
(* analysis-server model.  Each workload becomes a batch job (its     *)
(* assertion script plus edit/undo/redo bursts), duplicated so the    *)
(* cross-session cache has identical units to dedup, and every job's  *)
(* final dependence graph is checked byte-identical against a         *)
(* from-scratch single-session replay.  Gates: all identical, and     *)
(* shared-cache hit rate > 0.                                          *)
(* ------------------------------------------------------------------ *)

let multisession_json = "BENCH_multisession.json"

let first_assign_of_unit (u : Ast.program_unit) =
  Ast.fold_stmts
    (fun acc (s : Ast.stmt) ->
      match (acc, s.Ast.node) with
      | None, Ast.Assign _ -> Some s
      | _ -> acc)
    None u.Ast.body

(* The command-language version of editburst's driver.  Statement ids
   are taken from the canonically renumbered program — exactly what
   the batch driver (and the server) analyzes — so scripted [edit sN]
   lands on the right statement in every copy.  Each burst ends in
   [undo], leaving the original ids in place for the next one; a
   final redo/undo pair exercises the redo path too. *)
let burst_script (w : Workloads.t) ~bursts =
  let program = Ast.renumber_program (Workloads.program w) in
  let main_u =
    List.find
      (fun (u : Ast.program_unit) ->
        String.equal u.Ast.uname (Workloads.main_unit w))
      program.Ast.punits
  in
  match first_assign_of_unit main_u with
  | None -> w.Workloads.assertion_script
  | Some s ->
    let edit =
      Printf.sprintf "edit s%d %s" s.Ast.sid
        (String.trim (Pretty.stmt_to_string s))
    in
    w.Workloads.assertion_script
    @ List.concat (List.init bursts (fun _ -> [ edit; "undo" ]))
    @ [ "redo"; "undo" ]

let multisession_run ~smoke label =
  header
    (Printf.sprintf
       "%s: concurrent sessions over one shared cross-session cache \
        (interleaved batch) - throughput, hit rate, byte-identity vs \
        from-scratch"
       label);
  let workloads =
    if not smoke then Workloads.all
    else
      List.filter
        (fun (w : Workloads.t) ->
          List.mem w.Workloads.name
            [ "matmul"; "jacobi"; "recur"; "callnest" ])
        Workloads.all
  in
  let bursts = if smoke then 1 else 2 in
  let copies = 2 in
  let jobs =
    List.concat_map
      (fun (w : Workloads.t) ->
        let script = burst_script w ~bursts in
        List.init copies (fun c ->
            {
              Server.Batch.j_id = Printf.sprintf "%s/%d" w.Workloads.name c;
              j_file = w.Workloads.name ^ ".f";
              j_source = w.Workloads.source;
              j_unit = Some (Workloads.main_unit w);
              j_script = script;
            }))
      workloads
  in
  let cache = Server.Cache.create () in
  match Server.Batch.run ~cache ~domains:1 ~check:true jobs with
  | Error e ->
    Printf.eprintf "%s: %s\n" label e;
    exit 1
  | Ok o ->
    print_endline (Server.Batch.report o);
    let cs = o.Server.Batch.o_cache in
    let hit_rate = Server.Cache.hit_rate cs in
    let identical = o.Server.Batch.o_identical = Some true in
    Jout.write multisession_json
      (Jout.Obj
         [
           ("experiment", Jout.Str label);
           ("smoke", Jout.Bool smoke);
           ("sessions", Jout.Int o.Server.Batch.o_jobs);
           ("copies_per_workload", Jout.Int copies);
           ("bursts", Jout.Int bursts);
           ("commands", Jout.Int o.Server.Batch.o_commands);
           ("edits", Jout.Int o.Server.Batch.o_edits);
           ("elapsed_seconds", Jout.Float o.Server.Batch.o_elapsed_s);
           ( "sessions_per_sec",
             Jout.Float (Server.Batch.sessions_per_sec o) );
           ("edits_per_sec", Jout.Float (Server.Batch.edits_per_sec o));
           ( "cache",
             Jout.Obj
               [
                 ("hits", Jout.Int cs.Server.Cache.hits);
                 ("misses", Jout.Int cs.Server.Cache.misses);
                 ("hit_rate", Jout.Float hit_rate);
                 ("insertions", Jout.Int cs.Server.Cache.insertions);
                 ("evictions", Jout.Int cs.Server.Cache.evictions);
                 ("entries", Jout.Int cs.Server.Cache.entries);
                 ("bucket_entries", Jout.Int cs.Server.Cache.bucket_entries);
               ] );
           ("all_identical", Jout.Bool identical);
           ("hit_rate_positive", Jout.Bool (hit_rate > 0.));
         ]);
    if not identical then begin
      Printf.eprintf
        "%s: shared-cache DDGs diverged from from-scratch replay\n" label;
      exit 1
    end;
    if hit_rate <= 0. then begin
      Printf.eprintf
        "%s: duplicated sessions produced no cross-session cache hits\n"
        label;
      exit 1
    end

let multisession () = multisession_run ~smoke:false "multisession"

let multisession_smoke () =
  multisession_run ~smoke:true "multisession-smoke"

(* ------------------------------------------------------------------ *)
(* parscale: the parallel analyzer - Ddg.compute ?runner across a      *)
(* domain pool vs the sequential build                                 *)
(* ------------------------------------------------------------------ *)

let parscale_json = "BENCH_parscale.json"

(* A stress program wide enough that bucket-level parallelism has
   something to chew on: [nests] top-level 2-D nests over three shared
   arrays, cycling through distinct dependence patterns so every
   cross-nest bucket holds real reference pairs.  [seed_const] is the
   constant in the first nest - the incremental measurement edits it
   and nothing else. *)
let parscale_source ~nests ~seed_const =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "      PROGRAM PARSC\n";
  add "      INTEGER N\n";
  add "      PARAMETER (N = 64)\n";
  add "      REAL A(N,N), B(N,N), C(N,N)\n";
  add "      INTEGER I, J\n";
  add "      REAL S\n";
  add "      DO I = 1, N\n";
  add "        DO J = 1, N\n";
  add "          A(I,J) = FLOAT(I+J)\n";
  add "          B(I,J) = FLOAT(I-J)\n";
  add "          C(I,J) = 0.0\n";
  add "        ENDDO\n";
  add "      ENDDO\n";
  for k = 0 to nests - 1 do
    let c = if k = 0 then seed_const else float_of_int (k + 1) in
    add "      DO I = 2, N\n";
    add "        DO J = 2, N\n";
    (match k mod 4 with
    | 0 -> add "          A(I,J) = A(I,J) + B(I,J) * %.1f\n" c
    | 1 -> add "          B(I,J) = B(I-1,J) + C(I,J) * %.1f\n" c
    | 2 -> add "          C(I,J) = A(J,I) + B(I,J-1) * %.1f\n" c
    | _ -> add "          A(I,J) = C(I-1,J-1) + A(I,J-1) * %.1f\n" c);
    add "        ENDDO\n";
    add "      ENDDO\n"
  done;
  add "      S = 0.0\n";
  add "      DO I = 1, N\n";
  add "        DO J = 1, N\n";
  add "          S = S + A(I,J) + B(I,J) + C(I,J)\n";
  add "        ENDDO\n";
  add "      ENDDO\n";
  add "      PRINT *, S\n";
  add "      END\n";
  Buffer.contents b

let parscale_env ~nests ~seed_const =
  let src = parscale_source ~nests ~seed_const in
  let program =
    Ast.renumber_program (Parser.parse_program ~file:"parsc.f" src)
  in
  Depenv.make (List.hd program.Ast.punits)

let ddg_digest (g : Ddg.t) =
  Digest.to_hex (Digest.string (Marshal.to_string g []))

let best_of reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = now_s () in
    let r = f () in
    let s = now_s () -. t0 in
    if s < !best then best := s;
    result := Some r
  done;
  (Option.get !result, !best)

let parscale_run ~smoke label =
  header
    (Printf.sprintf
       "%s: from-scratch dependence analysis fanned across the domain pool \
        (Ddg.compute ?runner) vs sequential"
       label);
  let nests = if smoke then 12 else 24 in
  let reps = if smoke then 3 else 5 in
  let env = parscale_env ~nests ~seed_const:1.0 in
  let plan = Ddg.plan env in
  let tasks = Array.length (Ddg.tasks plan) in
  let seq, seq_s = best_of reps (fun () -> Ddg.compute env) in
  let seq_digest = ddg_digest seq in
  Printf.printf
    "stress unit: %d nests, %d bucket tasks, %d reference pairs\n" nests
    tasks seq.Ddg.stats.Ddg.pairs_tested;
  Printf.printf "%-8s %10s %8s %5s\n" "domains" "ms" "speedup" "same";
  Printf.printf "%-8s %10.2f %8s %5s\n" "seq" (seq_s *. 1e3) "1.0x" "yes";
  let rows =
    List.map
      (fun domains ->
        Runtime.Pool.with_pool domains (fun pool ->
            let runner = Runtime.Pool.analysis_runner pool in
            let g, s = best_of reps (fun () -> Ddg.compute ~runner env) in
            let identical = ddg_digest g = seq_digest && Ddg.equal seq g in
            let speedup = seq_s /. Float.max 1e-9 s in
            Printf.printf "%-8d %10.2f %7.1fx %5s\n" domains (s *. 1e3)
              speedup
              (if identical then "yes" else "NO");
            (domains, s, speedup, identical)))
      [ 1; 2; 4; 8 ]
  in
  (* Incremental: warm a shared cache on the base program, edit one
     nest's constant - canonical renumbering keeps every other
     statement's signature stable, so only the edited group's row and
     column of buckets miss. *)
  let cache = Ddg.make_cache () in
  let base = Ddg.compute ~cache env in
  let _, cold_hits, cold_misses = Ddg.cache_counters cache in
  let env2 = parscale_env ~nests ~seed_const:9.0 in
  let edited, warm_s = best_of 1 (fun () -> Ddg.compute ~cache env2) in
  let _, hits1, misses1 = Ddg.cache_counters cache in
  let edit_hits = hits1 - cold_hits and edit_misses = misses1 - cold_misses in
  ignore base;
  ignore edited;
  Printf.printf
    "incremental edit: %d/%d buckets replayed from cache (%d recomputed) in \
     %.2f ms\n"
    edit_hits (edit_hits + edit_misses) edit_misses (warm_s *. 1e3);
  let cores = Domain.recommended_domain_count () in
  let all_identical = List.for_all (fun (_, _, _, i) -> i) rows in
  let speedup4 =
    match List.find_opt (fun (d, _, _, _) -> d = 4) rows with
    | Some (_, _, sp, _) -> sp
    | None -> 0.
  in
  Jout.write parscale_json
    (Jout.Obj
       [
         ("experiment", Jout.Str label);
         ("smoke", Jout.Bool smoke);
         ("nests", Jout.Int nests);
         ("bucket_tasks", Jout.Int tasks);
         ("pairs_tested", Jout.Int seq.Ddg.stats.Ddg.pairs_tested);
         ("recommended_domains", Jout.Int cores);
         ("sequential_seconds", Jout.Float seq_s);
         ( "parallel",
           Jout.List
             (List.map
                (fun (d, s, sp, i) ->
                  Jout.Obj
                    [
                      ("domains", Jout.Int d);
                      ("seconds", Jout.Float s);
                      ("speedup", Jout.Float sp);
                      ("identical", Jout.Bool i);
                    ])
                rows) );
         ( "incremental",
           Jout.Obj
             [
               ("edit_bucket_hits", Jout.Int edit_hits);
               ("edit_bucket_misses", Jout.Int edit_misses);
               ("edit_seconds", Jout.Float warm_s);
             ] );
         ("all_identical", Jout.Bool all_identical);
       ]);
  if not all_identical then begin
    Printf.eprintf "%s: parallel DDGs diverged from the sequential build\n"
      label;
    exit 1
  end;
  if edit_hits = 0 then begin
    Printf.eprintf
      "%s: the one-constant edit replayed no buckets from the cache\n" label;
    exit 1
  end;
  (* The speedup gate only means something on a machine with cores to
     spare; a single-core container still checks identity above. *)
  if cores >= 2 && speedup4 < 1.0 then begin
    Printf.eprintf
      "%s: 4-domain analysis slower than sequential (%.2fx) on a %d-core \
       machine\n"
      label speedup4 cores;
    exit 1
  end
  else if cores < 2 then
    Printf.printf
      "note: single-core machine (recommended_domain_count %d) - speedup \
       gate skipped, identity gate enforced\n"
      cores

let parscale () = parscale_run ~smoke:false "parscale"
let parscale_smoke () = parscale_run ~smoke:true "parscale-smoke"

(* ------------------------------------------------------------------ *)
(* stress: the generator-driven stress suite (lib/oracle Stress) -     *)
(* from-scratch vs incremental analysis, 1/2/4/8-domain scaling, and   *)
(* shared-cache eviction under a deliberately undersized LRU budget    *)
(* ------------------------------------------------------------------ *)

let stress_json = "BENCH_stress.json"

(* Full mode runs the profiles as published, with many-units rescaled
   up to the 100k-line flagship; smoke mode shrinks every profile to
   its CI variant. *)
let stress_profile ~smoke (p : Oracle.Stress.profile) =
  if smoke then Oracle.Stress.smoke p
  else if String.equal p.Oracle.Stress.sp_name "many-units" then
    fst (Oracle.Stress.scale_to_lines ~target:100_000 p)
  else p

(* One interprocedural analysis environment per unit - the scratch
   baseline both the sequential and the pooled analyzer rebuild. *)
let stress_envs (program : Ast.program) =
  let summary = Interproc.Summary.analyze program in
  List.map
    (fun u -> Interproc.Summary.env_for summary u)
    program.Ast.punits

type stress_row = {
  sr_name : string;
  sr_units : int;
  sr_lines : int;
  sr_fingerprint : string;
  sr_gen_s : float;
  sr_parse_s : float;
  sr_round_trip : bool;
  sr_fp_stable : bool;
  sr_scratch_s : float;
  sr_edits : int;
  sr_edit_s : float;
  sr_edit_tests : int;
  sr_edit_stats : Engine.stats;      (* edit-phase deltas *)
  sr_inc_identical : bool;
  sr_seq_s : float;
  sr_par : (int * float * float * bool) list;
  sr_batch_jobs : int;
  sr_batch_identical : bool;
  sr_cache : Server.Cache.stats;
}

let stress_one ~seed ~bursts ~domain_counts (prof : Oracle.Stress.profile) =
  let name = prof.Oracle.Stress.sp_name in
  (* generation, pretty-printing, reparse - the round-trip must be
     byte-identical and fingerprint-stable, that is what makes every
     downstream measurement reproducible from (seed, profile) *)
  let t0 = now_s () in
  let program = Oracle.Stress.generate ~seed prof in
  let gen_s = now_s () -. t0 in
  let src = Pretty.program_to_string program in
  let fp = Oracle.Stress.fingerprint program in
  let t0 = now_s () in
  let reparsed = Parser.parse_program ~file:(name ^ ".f") src in
  let parse_s = now_s () -. t0 in
  let round_trip = String.equal (Pretty.program_to_string reparsed) src in
  (* a second draw from the same (seed, profile) must reproduce the
     fingerprint exactly - the reparsed AST is *not* compared (its
     source locations legitimately differ from the generated ones) *)
  let fp_stable =
    String.equal (Oracle.Stress.fingerprint (Oracle.Stress.generate ~seed prof)) fp
  in
  let main_u =
    List.find (fun u -> u.Ast.kind = Ast.Main) program.Ast.punits
  in
  (* from-scratch analysis time: open a caching session and force the
     first dependence graph *)
  let t0 = now_s () in
  let sess =
    Ped.Session.load ~caching:true program ~unit_name:main_u.Ast.uname
  in
  ignore (Ped.Session.ddg sess);
  let scratch_s = now_s () -. t0 in
  (* per-edit incremental time: edit/undo/redo bursts on the first
     assignment, measured against the engine's test counters *)
  let s0 = Ped.Session.engine_stats sess in
  let t0 = now_s () in
  drive_bursts sess ~bursts;
  let edit_s = now_s () -. t0 in
  let s1 = Ped.Session.engine_stats sess in
  let d f = f s1 - f s0 in
  let edit_stats =
    {
      Engine.tests_run = d (fun s -> s.Engine.tests_run);
      env_hits = d (fun s -> s.Engine.env_hits);
      env_misses = d (fun s -> s.Engine.env_misses);
      invalidations = d (fun s -> s.Engine.invalidations);
      summary_hits = d (fun s -> s.Engine.summary_hits);
      summary_builds = d (fun s -> s.Engine.summary_builds);
      ddg_bucket_hits = d (fun s -> s.Engine.ddg_bucket_hits);
      ddg_bucket_misses = d (fun s -> s.Engine.ddg_bucket_misses);
      summary_s = s1.Engine.summary_s -. s0.Engine.summary_s;
      env_s = s1.Engine.env_s -. s0.Engine.env_s;
      ddg_s = s1.Engine.ddg_s -. s0.Engine.ddg_s;
    }
  in
  let inc_identical = scratch_equal sess in
  (* domain scaling: rebuild every unit's graph sequentially, then
     across 1/2/4/8-domain pools - byte-identity per unit is the gate *)
  let envs = stress_envs program in
  let t0 = now_s () in
  let seq = List.map Ddg.compute envs in
  let seq_s = now_s () -. t0 in
  let seq_digests = List.map ddg_digest seq in
  let par =
    List.map
      (fun domains ->
        Runtime.Pool.with_pool domains (fun pool ->
            let runner = Runtime.Pool.analysis_runner pool in
            let t0 = now_s () in
            let gs = List.map (fun env -> Ddg.compute ~runner env) envs in
            let s = now_s () -. t0 in
            let identical =
              List.for_all2
                (fun g dg -> String.equal (ddg_digest g) dg)
                gs seq_digests
              && List.for_all2 Ddg.equal seq gs
            in
            (domains, s, seq_s /. Float.max 1e-9 s, identical)))
      domain_counts
  in
  (* eviction pressure: batch per-unit sessions over one shared cache
     whose budget is far below what the profile publishes (1 MB), with
     the byte-identity replay check on - the cache must evict and the
     answers must not change.  Two passes over the units make the
     second pass re-miss whatever the first evicted. *)
  let batch_units =
    List.filteri (fun i _ -> i < 6) program.Ast.punits
  in
  let job i (u : Ast.program_unit) =
    {
      Server.Batch.j_id = Printf.sprintf "%s/%d" name i;
      j_file = name ^ ".f";
      j_source = src;
      j_unit = Some u.Ast.uname;
      j_script = [ "loops" ];
    }
  in
  let pass = List.length batch_units in
  let jobs =
    List.mapi job batch_units
    @ List.mapi (fun i u -> job (pass + i) u) batch_units
  in
  let cache = Server.Cache.create ~budget_mb:1 () in
  let batch_identical, cache_stats =
    match Server.Batch.run ~cache ~check:true jobs with
    | Error e ->
      Printf.eprintf "stress %s: batch failed: %s\n" name e;
      exit 1
    | Ok o ->
      (o.Server.Batch.o_identical = Some true, o.Server.Batch.o_cache)
  in
  {
    sr_name = name;
    sr_units = List.length program.Ast.punits;
    sr_lines = Oracle.Stress.lines src;
    sr_fingerprint = fp;
    sr_gen_s = gen_s;
    sr_parse_s = parse_s;
    sr_round_trip = round_trip;
    sr_fp_stable = fp_stable;
    sr_scratch_s = scratch_s;
    sr_edits = bursts * 3;
    sr_edit_s = edit_s;
    sr_edit_tests = edit_stats.Engine.tests_run;
    sr_edit_stats = edit_stats;
    sr_inc_identical = inc_identical;
    sr_seq_s = seq_s;
    sr_par = par;
    sr_batch_jobs = List.length jobs;
    sr_batch_identical = batch_identical;
    sr_cache = cache_stats;
  }

let stress_row_json seed (r : stress_row) =
  let st = r.sr_edit_stats in
  let cs = r.sr_cache in
  Jout.Obj
    [
      ("profile", Jout.Str r.sr_name);
      ("seed", Jout.Int seed);
      ("units", Jout.Int r.sr_units);
      ("lines", Jout.Int r.sr_lines);
      ("fingerprint", Jout.Str r.sr_fingerprint);
      ("gen_seconds", Jout.Float r.sr_gen_s);
      ("parse_seconds", Jout.Float r.sr_parse_s);
      ("round_trip", Jout.Bool r.sr_round_trip);
      ("fingerprint_stable", Jout.Bool r.sr_fp_stable);
      ("scratch_analysis_seconds", Jout.Float r.sr_scratch_s);
      ( "incremental",
        Jout.Obj
          [
            ("edits", Jout.Int r.sr_edits);
            ("edit_seconds", Jout.Float r.sr_edit_s);
            ( "seconds_per_edit",
              Jout.Float (r.sr_edit_s /. float_of_int (max 1 r.sr_edits)) );
            ("edit_tests", Jout.Int r.sr_edit_tests);
            ("env_hits", Jout.Int st.Engine.env_hits);
            ("env_misses", Jout.Int st.Engine.env_misses);
            ("invalidations", Jout.Int st.Engine.invalidations);
            ("summary_hits", Jout.Int st.Engine.summary_hits);
            ("summary_builds", Jout.Int st.Engine.summary_builds);
            ("ddg_bucket_hits", Jout.Int st.Engine.ddg_bucket_hits);
            ("ddg_bucket_misses", Jout.Int st.Engine.ddg_bucket_misses);
            ("identical", Jout.Bool r.sr_inc_identical);
          ] );
      ("sequential_seconds", Jout.Float r.sr_seq_s);
      ( "parallel",
        Jout.List
          (List.map
             (fun (dm, s, sp, i) ->
               Jout.Obj
                 [
                   ("domains", Jout.Int dm);
                   ("seconds", Jout.Float s);
                   ("speedup", Jout.Float sp);
                   ("identical", Jout.Bool i);
                 ])
             r.sr_par) );
      ( "eviction",
        Jout.Obj
          [
            ("budget_mb", Jout.Int 1);
            ("jobs", Jout.Int r.sr_batch_jobs);
            ("hits", Jout.Int cs.Server.Cache.hits);
            ("misses", Jout.Int cs.Server.Cache.misses);
            ("hit_rate", Jout.Float (Server.Cache.hit_rate cs));
            ("insertions", Jout.Int cs.Server.Cache.insertions);
            ("evictions", Jout.Int cs.Server.Cache.evictions);
            ("entries", Jout.Int cs.Server.Cache.entries);
            ("batch_identical", Jout.Bool r.sr_batch_identical);
          ] );
    ]

let stress_run ~smoke label =
  header
    (Printf.sprintf
       "%s: generator-driven stress programs (deep / wide / many-units) - \
        from-scratch vs incremental analysis, domain scaling, LRU eviction \
        under a 1 MB budget"
       label);
  let seed =
    Oracle.Driver.seed_of ~env:(Sys.getenv_opt "QCHECK_SEED") ~cli:None
  in
  let bursts = if smoke then 1 else 2 in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let cores = Domain.recommended_domain_count () in
  let rows =
    List.map
      (fun p ->
        let prof = stress_profile ~smoke p in
        let r = stress_one ~seed ~bursts ~domain_counts prof in
        Printf.printf
          "%-11s %5d units %7d lines  gen %6.1f ms  scratch %8.1f ms  \
           edit %7.2f ms/edit  %s\n"
          r.sr_name r.sr_units r.sr_lines (r.sr_gen_s *. 1e3)
          (r.sr_scratch_s *. 1e3)
          (r.sr_edit_s /. float_of_int (max 1 r.sr_edits) *. 1e3)
          (if r.sr_inc_identical then "identical" else "DIVERGED");
        List.iter
          (fun (dm, s, sp, i) ->
            Printf.printf "  %d domains %10.2f ms %7.2fx %s\n" dm (s *. 1e3)
              sp
              (if i then "identical" else "DIVERGED"))
          r.sr_par;
        Printf.printf
          "  cache: %d hits %d misses %d insertions %d evictions (%s)\n"
          r.sr_cache.Server.Cache.hits r.sr_cache.Server.Cache.misses
          r.sr_cache.Server.Cache.insertions
          r.sr_cache.Server.Cache.evictions
          (if r.sr_batch_identical then "identical" else "DIVERGED");
        r)
      Oracle.Stress.all
  in
  let all_round_trip =
    List.for_all (fun r -> r.sr_round_trip && r.sr_fp_stable) rows
  in
  let all_incremental = List.for_all (fun r -> r.sr_inc_identical) rows in
  let all_parallel =
    List.for_all
      (fun r -> List.for_all (fun (_, _, _, i) -> i) r.sr_par)
      rows
  in
  let all_batch = List.for_all (fun r -> r.sr_batch_identical) rows in
  let any_evictions =
    List.exists (fun r -> r.sr_cache.Server.Cache.evictions > 0) rows
  in
  Jout.write stress_json
    (Jout.Obj
       [
         ("experiment", Jout.Str label);
         ("smoke", Jout.Bool smoke);
         ("seed", Jout.Int seed);
         ("recommended_domains", Jout.Int cores);
         ("profiles", Jout.List (List.map (stress_row_json seed) rows));
         ("all_round_trip", Jout.Bool all_round_trip);
         ("all_incremental_identical", Jout.Bool all_incremental);
         ("all_parallel_identical", Jout.Bool all_parallel);
         ("all_batch_identical", Jout.Bool all_batch);
         ("any_evictions", Jout.Bool any_evictions);
       ]);
  if not all_round_trip then begin
    Printf.eprintf
      "%s: a stress program failed the byte/fingerprint round-trip\n" label;
    exit 1
  end;
  if not all_incremental then begin
    Printf.eprintf
      "%s: an incremental session diverged from from-scratch analysis\n"
      label;
    exit 1
  end;
  if not all_parallel then begin
    Printf.eprintf
      "%s: a pooled analysis diverged from the sequential build\n" label;
    exit 1
  end;
  if not all_batch then begin
    Printf.eprintf
      "%s: a shared-cache batch DDG diverged from its from-scratch replay\n"
      label;
    exit 1
  end;
  if not any_evictions then begin
    Printf.eprintf
      "%s: no profile evicted from the 1 MB shared cache - the stress sizes \
       no longer pressure the LRU budget\n"
      label;
    exit 1
  end;
  if cores < 2 then
    Printf.printf
      "note: single-core machine (recommended_domain_count %d) - timing rows \
       are not speedups, identity gates enforced\n"
      cores

let stress () = stress_run ~smoke:false "stress"
let stress_smoke () = stress_run ~smoke:true "stress-smoke"

(* ------------------------------------------------------------------ *)
(* perfdiag: every performance detector fires on a dedicated trigger   *)
(* ------------------------------------------------------------------ *)

let perfdiag_json = "BENCH_perfdiag.json"

(* One synthetic kernel per detector, each built so the ratio its
   detector thresholds on is forced by construction rather than by
   machine speed: quadratically skewed work for imbalance, a tiny
   loop forked hundreds of times for granularity, a large write-only
   (hence privatizable) scratch array for privatization cost, a
   dominant first-order recurrence for serial fraction, and unpriced
   per-worker array copies dragging measured speedup far below the
   estimator's promise for prediction mismatch.  The control kernel
   is rectangular, coarse and copy-free: every detector must stay
   quiet on it. *)

(* Outer loop parallel; iteration I does O(I^2) work, so under chunk
   scheduling the upper half of the iteration space carries ~7x the
   work of the lower half. *)
let perfdiag_imbalance_src ~n =
  Printf.sprintf
    "      PROGRAM PDIMB\n\
     \      INTEGER N\n\
     \      PARAMETER (N = %d)\n\
     \      REAL A(N)\n\
     \      INTEGER I, J\n\
     \      DO I = 1, N\n\
     \        A(I) = 0.0\n\
     \      ENDDO\n\
     \      DO I = 1, N\n\
     \        DO J = 1, I * I\n\
     \          A(I) = A(I) + FLOAT(J) * 0.5\n\
     \        ENDDO\n\
     \      ENDDO\n\
     \      PRINT *, A(N)\n\
     \      END\n"
    n

(* A trip-8 trivial-body parallel loop forked [r] times from a serial
   outer loop: fork/join latency dwarfs the per-fork body. *)
let perfdiag_granularity_src ~r =
  Printf.sprintf
    "      PROGRAM PDGRAN\n\
     \      INTEGER N, R\n\
     \      PARAMETER (N = 8, R = %d)\n\
     \      REAL A(N)\n\
     \      INTEGER I, K\n\
     \      DO I = 1, N\n\
     \        A(I) = 0.0\n\
     \      ENDDO\n\
     \      DO K = 1, R\n\
     \        DO I = 1, N\n\
     \          A(I) = A(I) + 1.0\n\
     \        ENDDO\n\
     \      ENDDO\n\
     \      PRINT *, A(1)\n\
     \      END\n"
    r

(* T is written and never read, so the plan privatizes it — and every
   one of the [r] executions copies all [m] elements into (and back
   out of) each worker, against a 4-iteration two-statement body. *)
let perfdiag_privatization_src ~m ~r =
  Printf.sprintf
    "      PROGRAM PDPRIV\n\
     \      INTEGER N, M, R\n\
     \      PARAMETER (N = 4, M = %d, R = %d)\n\
     \      REAL A(N), T(M)\n\
     \      INTEGER I, K\n\
     \      DO I = 1, N\n\
     \        A(I) = 0.0\n\
     \      ENDDO\n\
     \      DO K = 1, R\n\
     \        DO I = 1, N\n\
     \          T(I) = FLOAT(I + K)\n\
     \          A(I) = A(I) + FLOAT(I) * 0.5\n\
     \        ENDDO\n\
     \      ENDDO\n\
     \      PRINT *, A(1), A(N)\n\
     \      END\n"
    m r

(* A first-order recurrence over [n] elements dominates the run; the
   only parallel loop is a trivial 64-trip tail. *)
let perfdiag_serial_src ~n =
  Printf.sprintf
    "      PROGRAM PDSER\n\
     \      INTEGER N, M\n\
     \      PARAMETER (N = %d, M = 64)\n\
     \      REAL A(N), B(M)\n\
     \      INTEGER I\n\
     \      A(1) = 1.0\n\
     \      DO I = 2, N\n\
     \        A(I) = A(I-1) * 0.9 + FLOAT(I)\n\
     \      ENDDO\n\
     \      DO I = 1, M\n\
     \        B(I) = FLOAT(I) * 2.0\n\
     \      ENDDO\n\
     \      PRINT *, A(N), B(M)\n\
     \      END\n"
    n

(* The estimator prices the coarse W=150 inner body and a 200-cycle
   fork, promising ~2x — but not the per-worker copy of the [m]-element
   privatized scratch array repeated every one of the [r] executions,
   which sinks the measured speedup below half the promise. *)
let perfdiag_mismatch_src ~m ~r =
  Printf.sprintf
    "      PROGRAM PDMIS\n\
     \      INTEGER N, M, R, W\n\
     \      PARAMETER (N = 32, M = %d, R = %d, W = 150)\n\
     \      REAL A(N), T(M)\n\
     \      INTEGER I, J, K\n\
     \      DO I = 1, N\n\
     \        A(I) = 0.0\n\
     \      ENDDO\n\
     \      DO K = 1, R\n\
     \        DO I = 1, N\n\
     \          T(I) = FLOAT(I + K)\n\
     \          DO J = 1, W\n\
     \            A(I) = A(I) + FLOAT(J) * 0.5\n\
     \          ENDDO\n\
     \        ENDDO\n\
     \      ENDDO\n\
     \      PRINT *, A(N)\n\
     \      END\n"
    m r

(* Balanced control: rectangular work, one coarse fork, no private
   arrays, no recurrence — every detector must stay silent. *)
let perfdiag_control_src ~m =
  Printf.sprintf
    "      PROGRAM PDCTL\n\
     \      INTEGER N, M\n\
     \      PARAMETER (N = 64, M = %d)\n\
     \      REAL A(N)\n\
     \      INTEGER I, J\n\
     \      DO I = 1, N\n\
     \        A(I) = 0.0\n\
     \      ENDDO\n\
     \      DO I = 1, N\n\
     \        DO J = 1, M\n\
     \          A(I) = A(I) + FLOAT(J) * 0.5\n\
     \        ENDDO\n\
     \      ENDDO\n\
     \      PRINT *, A(N)\n\
     \      END\n"
    m

type diag_case = {
  dc_name : string;
  dc_kind : Perfdebug.Detect.kind option;
      (* the detector this kernel must trip; None = control, which
         must instead stay silent *)
  dc_gated : bool;  (* enforce only when the host has >= domains cores *)
  dc_source : string;
}

let perfdiag_cases ~smoke =
  [
    {
      dc_name = "imbalance";
      dc_kind = Some Perfdebug.Detect.Imbalance;
      (* on one core the light worker's wall span stretches across the
         heavy worker's timeslices, hiding the spread *)
      dc_gated = true;
      dc_source = perfdiag_imbalance_src ~n:(if smoke then 32 else 64);
    };
    {
      dc_name = "granularity";
      dc_kind = Some Perfdebug.Detect.Granularity;
      dc_gated = false;
      dc_source = perfdiag_granularity_src ~r:(if smoke then 60 else 300);
    };
    {
      dc_name = "privatization";
      dc_kind = Some Perfdebug.Detect.Privatization;
      dc_gated = false;
      dc_source =
        perfdiag_privatization_src
          ~m:(if smoke then 50_000 else 200_000)
          ~r:(if smoke then 8 else 30);
    };
    {
      dc_name = "serial";
      dc_kind = Some Perfdebug.Detect.Serial_fraction;
      dc_gated = false;
      dc_source = perfdiag_serial_src ~n:(if smoke then 15_000 else 60_000);
    };
    {
      dc_name = "mismatch";
      dc_kind = Some Perfdebug.Detect.Prediction_mismatch;
      (* mismatch needs a trusted measurement, which analyze only
         grants when the host really has [domains] cores *)
      dc_gated = true;
      dc_source =
        perfdiag_mismatch_src
          ~m:(if smoke then 120_000 else 400_000)
          ~r:(if smoke then 8 else 30);
    };
    {
      dc_name = "control";
      dc_kind = None;
      (* on an oversubscribed single core, wall-clock spans of
         timesliced workers can fake a spread *)
      dc_gated = true;
      dc_source = perfdiag_control_src ~m:(if smoke then 400 else 1500);
    };
  ]

let kind_slug = function
  | Perfdebug.Detect.Imbalance -> "imbalance"
  | Perfdebug.Detect.Granularity -> "granularity"
  | Perfdebug.Detect.Privatization -> "privatization"
  | Perfdebug.Detect.Serial_fraction -> "serial-fraction"
  | Perfdebug.Detect.Prediction_mismatch -> "prediction-mismatch"

(* Parse, auto-parallelize every safe loop (the same pipeline as
   ped --execute), hand back the annotated program. *)
let diag_parallelized ~name source =
  let program =
    Ast.renumber_program (Parser.parse_program ~file:(name ^ ".f") source)
  in
  let unit_name = (List.hd program.Ast.punits).Ast.uname in
  let sess = Ped.Session.load program ~unit_name in
  auto_parallelize sess;
  Ped.Session.program sess

let perfdiag_run ~smoke label =
  header
    "perfdiag: rule-based performance diagnosis - each detector must fire \
     on its dedicated synthetic kernel and stay silent on the balanced \
     control";
  let cores = Domain.recommended_domain_count () in
  let domains = 2 in
  let schedule = Runtime.Pool.Chunk in
  if cores < domains then
    Printf.printf
      "note: single-core machine (recommended_domain_count %d) - checks \
       needing real concurrency (imbalance, mismatch, control silence) \
       reported but not enforced\n"
      cores;
  Printf.printf "%-14s %9s %9s %10s %-24s %s\n" "kernel" "seq ms" "par ms"
    "predicted" "fired" "verdict";
  let rows =
    List.map
      (fun c ->
        let prog = diag_parallelized ~name:c.dc_name c.dc_source in
        let d = Perfdebug.Driver.diagnose ~domains ~schedule prog in
        let kinds = Perfdebug.Driver.kinds d in
        let enforced = (not c.dc_gated) || cores >= domains in
        let ok =
          match c.dc_kind with
          | Some k -> List.mem k kinds
          | None -> kinds = []
        in
        let verdict =
          if ok then "ok"
          else if enforced then "FAIL"
          else "miss (not enforced)"
        in
        Printf.printf "%-14s %9.2f %9.2f %9.2fx %-24s %s\n" c.dc_name
          (d.Perfdebug.Driver.seq_wall *. 1e3)
          (d.Perfdebug.Driver.par_wall *. 1e3)
          d.Perfdebug.Driver.predicted
          (if kinds = [] then "-"
           else String.concat "," (List.map kind_slug kinds))
          verdict;
        (c, d, kinds, ok, enforced))
      (perfdiag_cases ~smoke)
  in
  let case_json (c, (d : Perfdebug.Driver.t), kinds, ok, enforced) =
    Jout.Obj
      [
        ("name", Jout.Str c.dc_name);
        ( "expected",
          match c.dc_kind with
          | Some k -> Jout.Str (kind_slug k)
          | None -> Jout.Str "silence" );
        ("fired", Jout.List (List.map (fun k -> Jout.Str (kind_slug k)) kinds));
        ("pass", Jout.Bool ok);
        ("enforced", Jout.Bool enforced);
        ("seq_wall_s", Jout.Float d.Perfdebug.Driver.seq_wall);
        ("par_wall_s", Jout.Float d.Perfdebug.Driver.par_wall);
        ("predicted", Jout.Float d.Perfdebug.Driver.predicted);
        ( "measured",
          match d.Perfdebug.Driver.measured with
          | Some m -> Jout.Float m
          | None -> Jout.Null );
        ( "parallel_coverage",
          Jout.Float
            (Perfdebug.Profile.parallel_coverage d.Perfdebug.Driver.profile) );
        ( "findings",
          Jout.List
            (List.map
               (fun (f : Perfdebug.Detect.finding) ->
                 Jout.Obj
                   [
                     ("kind", Jout.Str (kind_slug f.Perfdebug.Detect.f_kind));
                     ( "loop",
                       match f.Perfdebug.Detect.f_loop with
                       | Some sid -> Jout.Str (Printf.sprintf "s%d" sid)
                       | None -> Jout.Null );
                     ("score", Jout.Float f.Perfdebug.Detect.f_score);
                     ("summary", Jout.Str f.Perfdebug.Detect.f_summary);
                   ])
               d.Perfdebug.Driver.findings) );
      ]
  in
  Jout.write perfdiag_json
    (Jout.Obj
       [
         ("experiment", Jout.Str label);
         ("smoke", Jout.Bool smoke);
         ("cores", Jout.Int cores);
         ("domains", Jout.Int domains);
         ("schedule", Jout.Str (Runtime.Pool.schedule_to_string schedule));
         ("cases", Jout.List (List.map case_json rows));
         ( "all_pass",
           Jout.Bool
             (List.for_all (fun (_, _, _, ok, enf) -> ok || not enf) rows) );
       ]);
  List.iter
    (fun (c, _, kinds, ok, enforced) ->
      if (not ok) && enforced then begin
        (match c.dc_kind with
        | Some k ->
          Printf.eprintf
            "perfdiag GATE: kernel %s did not trip the %s detector (fired: \
             %s)\n"
            c.dc_name (kind_slug k)
            (if kinds = [] then "nothing"
             else String.concat "," (List.map kind_slug kinds))
        | None ->
          Printf.eprintf
            "perfdiag GATE: control kernel must be silent but fired %s\n"
            (String.concat "," (List.map kind_slug kinds)));
        exit 1
      end)
    rows

let perfdiag () = perfdiag_run ~smoke:false "perfdiag"
let perfdiag_smoke () = perfdiag_run ~smoke:true "perfdiag-smoke"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("table6-smoke", table6_smoke);
    ("calibrate", calibrate_exp);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("ablation", ablation);
    ("editburst", editburst);
    ("editburst-smoke", editburst_smoke);
    ("fuzz-smoke", fuzz_smoke);
    ("precision", precision);
    ("precision-smoke", precision_smoke);
    ("multisession", multisession);
    ("multisession-smoke", multisession_smoke);
    ("parscale", parscale);
    ("parscale-smoke", parscale_smoke);
    ("stress", stress);
    ("stress-smoke", stress_smoke);
    ("perfdiag", perfdiag);
    ("perfdiag-smoke", perfdiag_smoke);
    ("telemetry-overhead", telemetry_overhead);
    ("bench", microbench);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
    List.iter
      (fun n ->
        match List.assoc_opt n experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %s (have: %s)\n" n
            (String.concat ", " (List.map fst experiments)))
      names
